//! Every shipped scenario file must parse and run, producing sane reports.

use hotc_cli::{run_scenario, Scenario};

fn load(name: &str) -> Scenario {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

#[test]
fn burst_scenario() {
    let report = run_scenario(&load("burst.hotc")).unwrap();
    assert_eq!(report.requests, 8 * 18 + 4 * 72);
    assert!(report.cold_fraction < 0.5);
    assert!(report.p50_ms < 100.0, "warm median, got {}", report.p50_ms);
}

#[test]
fn serial_keepalive_scenario() {
    let report = run_scenario(&load("serial_keepalive.hotc")).unwrap();
    assert_eq!(report.requests, 20);
    // One cold start, the rest within the 15-minute TTL.
    assert!((report.cold_fraction - 0.05).abs() < 1e-9);
}

#[test]
fn youtube_scenario() {
    let report = run_scenario(&load("youtube_day.hotc")).unwrap();
    assert!(report.requests > 1000);
    assert!(report.cold_fraction < 0.05);
    assert!(report.p99_ms < 100.0);
}

#[test]
fn edge_overlay_scenario() {
    let report = run_scenario(&load("edge_overlay.hotc")).unwrap();
    assert_eq!(report.requests, 10);
    // Edge inference is tens of seconds; the first run also pays a big cold
    // start (overlay + model load at Pi speed).
    assert!(report.p50_ms > 10_000.0);
    assert!(report.cold_fraction <= 0.1 + 1e-9);
}

#[test]
fn flaky_scenario_reports_failures() {
    let report = run_scenario(&load("flaky_multi_tenant.hotc")).unwrap();
    assert!(report.requests > 300);
    assert!(
        (0.04..0.25).contains(&report.failed_fraction),
        "failed fraction {}",
        report.failed_fraction
    );
    // Crashed containers are replaced: cold fraction tracks the crash rate
    // but service continues.
    assert!(report.cold_fraction < 0.4);
}

#[test]
fn scenarios_are_deterministic() {
    let a = run_scenario(&load("burst.hotc")).unwrap();
    let b = run_scenario(&load("burst.hotc")).unwrap();
    assert_eq!(a.latencies_ms, b.latencies_ms);
}

#[test]
fn azure_hybrid_scenario() {
    let report = run_scenario(&load("azure_hybrid.hotc")).unwrap();
    assert!(report.requests > 500);
    // The hybrid provider keeps the hot/periodic classes warm.
    assert!(report.cold_fraction < 0.1, "{}", report.cold_fraction);
}

#[test]
fn multi_tenant_scenario() {
    let report = run_scenario(&load("multi_tenant.hotc")).unwrap();
    // The synthesizer emits exactly `requests` per tenant.
    assert_eq!(report.requests, 4 * 50_000);
    // Zipf-hot keys stay warm; the long tail cold-starts.
    assert!(report.cold_fraction < 0.2, "{}", report.cold_fraction);
}

#[test]
fn flash_crowd_scenario() {
    let report = run_scenario(&load("flash_crowd.hotc")).unwrap();
    assert_eq!(report.requests, 100_000);
    assert!(report.cold_fraction < 0.2, "{}", report.cold_fraction);
}

#[test]
fn deploy_waves_scenario() {
    let report = run_scenario(&load("deploy_waves.hotc")).unwrap();
    assert_eq!(report.requests, 100_000);
    // Each wave churns the hot key window, so some cold starts are expected
    // but the within-wave hot set must still mostly hit warm runtimes.
    assert!(report.cold_fraction < 0.5, "{}", report.cold_fraction);
}
