//! The paper's §V-B image-recognition study: inception-v3 (Python) and a
//! Go TensorFlow-API app, on the cloud server and on a Raspberry Pi 3 with
//! overlay networking, with and without HotC.
//!
//! ```text
//! cargo run --example image_recognition
//! ```

use hotc_repro::prelude::*;

fn mean_run_seconds<P: RuntimeProvider>(
    mut gateway: Gateway<P>,
    function: &str,
    runs: usize,
) -> f64 {
    let mut total = SimDuration::ZERO;
    let mut now = SimTime::ZERO;
    for _ in 0..runs {
        let trace = gateway.handle(function, now).expect("inference run");
        total += trace.total();
        now = trace.t6_gateway_out + SimDuration::from_secs(5);
        gateway.tick(now).expect("tick");
    }
    (total / runs as u64).as_secs_f64()
}

fn measure(app: &AppProfile, hw: &HardwareProfile, net: NetworkMode) -> (f64, f64) {
    let spec = faas::FunctionSpec::from_app(app.clone()).with_config(app.config_with_network(net));

    // Without HotC: a fresh container per run.
    let engine = ContainerEngine::with_local_images(hw.clone());
    let mut default_gw = Gateway::new(engine, faas::ColdStartAlways::new());
    default_gw.register(spec.clone());
    let default = mean_run_seconds(default_gw, &spec.name, 10);

    // With HotC: runtime reuse.
    let engine = ContainerEngine::with_local_images(hw.clone());
    let mut hotc_gw = Gateway::new(engine, HotC::with_defaults());
    hotc_gw.register(spec.clone());
    let hotc = mean_run_seconds(hotc_gw, &spec.name, 10);

    (default, hotc)
}

fn main() {
    let mut table = Table::new(
        "image recognition, average of 10 runs",
        &[
            "app",
            "platform",
            "network",
            "default_s",
            "hotc_s",
            "reduction_%",
        ],
    );
    let scenarios = [
        (HardwareProfile::server(), NetworkMode::Bridge, "server"),
        (
            HardwareProfile::raspberry_pi3(),
            NetworkMode::Overlay,
            "raspberry-pi3",
        ),
    ];
    for (hw, net, platform) in &scenarios {
        for app in [AppProfile::v3_app(), AppProfile::tf_api_app()] {
            let (default, hotc) = measure(&app, hw, *net);
            table.row(&[
                app.name.to_string(),
                platform.to_string(),
                net.to_string(),
                format!("{default:.2}"),
                format!("{hotc:.2}"),
                format!("{:.1}", (1.0 - hotc / default) * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "paper (Fig 8): v3-app −33.2% / TF-API −23.9% on the server; −26.6% / −20.6% on the Pi"
    );
}
