//! The request-path stage taxonomy for the Fig.-2-style decomposition.
//!
//! The paper's six-timestamp instrumentation (§III-A) splits a request into
//! forwarding, initiation, and execution segments; its Fig. 2 further
//! decomposes initiation into the container-engine internals. [`Stage`] is
//! that combined taxonomy: the fixed gateway/watchdog hops, every cold-start
//! stage the engine reports in its `CostBreakdown`, the fuzzy-reuse
//! reconfiguration cost, and the app-init/exec split of the execution
//! segment. A [`StageSample`] holds one request's duration per stage; the
//! stage durations of a request always sum to its end-to-end
//! `RequestTrace::total()`, which is what lets live stage histograms be
//! reconciled against e2e latency exactly.

use simclock::SimDuration;

/// One stage of the instrumented request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Gateway proxy hops: client→gateway (1→2) plus gateway→client (5→6).
    GatewayHop,
    /// Watchdog hops: gateway→function (2→3 fixed part) plus
    /// function→gateway (4→5).
    WatchdogHop,
    /// Waiting for the serialized container daemon (queueing/lock wait).
    QueueWait,
    /// Registry download of missing image layers.
    ImagePull,
    /// Decompressing/unpacking downloaded layers.
    ImageUnpack,
    /// Namespace + cgroup + rootfs allocation.
    ResourceAlloc,
    /// Network mode setup.
    NetworkSetup,
    /// Volume create + bind mount.
    VolumeMount,
    /// Language runtime cold initialization.
    RuntimeInit,
    /// Loading the function code into the runtime.
    CodeLoad,
    /// Applying configuration deltas to a fuzzy-matched reused runtime.
    Reconfig,
    /// App-level initialization on the first execution in a runtime.
    AppInit,
    /// The function handler itself.
    Exec,
}

/// Number of stages in [`Stage::ALL`].
pub const N_STAGES: usize = 13;

impl Stage {
    /// Every stage, in request-path order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::GatewayHop,
        Stage::WatchdogHop,
        Stage::QueueWait,
        Stage::ImagePull,
        Stage::ImageUnpack,
        Stage::ResourceAlloc,
        Stage::NetworkSetup,
        Stage::VolumeMount,
        Stage::RuntimeInit,
        Stage::CodeLoad,
        Stage::Reconfig,
        Stage::AppInit,
        Stage::Exec,
    ];

    /// Stable snake_case name, used as the JSON key in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Stage::GatewayHop => "gateway_hop",
            Stage::WatchdogHop => "watchdog_hop",
            Stage::QueueWait => "queue_wait",
            Stage::ImagePull => "image_pull",
            Stage::ImageUnpack => "image_unpack",
            Stage::ResourceAlloc => "resource_alloc",
            Stage::NetworkSetup => "network_setup",
            Stage::VolumeMount => "volume_mount",
            Stage::RuntimeInit => "runtime_init",
            Stage::CodeLoad => "code_load",
            Stage::Reconfig => "reconfig",
            Stage::AppInit => "app_init",
            Stage::Exec => "exec",
        }
    }

    /// Index into [`Stage::ALL`]-ordered arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One request's duration per stage. Stages that did not occur stay zero
/// and are not recorded into histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSample {
    ns: [u64; N_STAGES],
}

impl StageSample {
    /// A sample with every stage at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a stage's duration.
    pub fn set(&mut self, stage: Stage, d: SimDuration) {
        self.ns[stage.index()] = d.as_nanos();
    }

    /// Adds to a stage's duration (for stages visited more than once per
    /// request, like the two gateway hops).
    pub fn add(&mut self, stage: Stage, d: SimDuration) {
        self.ns[stage.index()] += d.as_nanos();
    }

    /// A stage's duration.
    pub fn get(&self, stage: Stage) -> SimDuration {
        SimDuration::from_nanos(self.ns[stage.index()])
    }

    /// Raw nanoseconds per stage, in [`Stage::ALL`] order.
    pub fn nanos(&self) -> &[u64; N_STAGES] {
        &self.ns
    }

    /// Sum over all stages — equals the request's e2e total when the sample
    /// was filled from a complete request path.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.ns.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_stage_in_order() {
        assert_eq!(Stage::ALL.len(), N_STAGES);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s:?}");
        }
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.dedup();
        assert_eq!(names.len(), N_STAGES, "stage names must be unique");
    }

    #[test]
    fn sample_set_add_total() {
        let mut s = StageSample::new();
        s.set(Stage::Exec, SimDuration::from_millis(5));
        s.add(Stage::GatewayHop, SimDuration::from_micros(1500));
        s.add(Stage::GatewayHop, SimDuration::from_micros(1500));
        assert_eq!(s.get(Stage::GatewayHop), SimDuration::from_millis(3));
        assert_eq!(s.get(Stage::AppInit), SimDuration::ZERO);
        assert_eq!(s.total(), SimDuration::from_millis(8));
    }
}
