//! Language runtime model: per-language cold initialization and warm-up.
//!
//! Fig. 4(a)/(b) of the paper compares an S3-download benchmark across
//! languages: Go's cold execution is 3.06× its hot execution, and for Java —
//! whose program "must be compiled into bytecode files and then translated
//! and executed by the JVM" — the cold start "even doubles the already long
//! execution". §II-B adds that interpreted/JIT languages pay extra at cold
//! start.

use simclock::SimDuration;

/// The language runtime packaged inside a container image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LanguageRuntime {
    /// CPython interpreter: moderate startup (interpreter boot + imports).
    Python,
    /// Static native binary: near-instant startup.
    Go,
    /// JVM: slow boot plus JIT warm-up on first execution.
    Java,
    /// Node.js: V8 boot + module graph load.
    NodeJs,
    /// Ruby interpreter, for catalogue breadth.
    Ruby,
    /// Anything precompiled without a managed runtime (C/C++/Rust).
    Native,
}

impl LanguageRuntime {
    /// All modelled runtimes, in catalogue order.
    pub const ALL: [LanguageRuntime; 6] = [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::Java,
        LanguageRuntime::NodeJs,
        LanguageRuntime::Ruby,
        LanguageRuntime::Native,
    ];

    /// One-time runtime initialization when a container boots cold
    /// (interpreter/VM start, standard library load). Reference-server values.
    pub fn cold_init(self) -> SimDuration {
        match self {
            LanguageRuntime::Python => SimDuration::from_millis(300),
            LanguageRuntime::Go => SimDuration::from_millis(45),
            LanguageRuntime::Java => SimDuration::from_millis(400),
            LanguageRuntime::NodeJs => SimDuration::from_millis(240),
            LanguageRuntime::Ruby => SimDuration::from_millis(350),
            LanguageRuntime::Native => SimDuration::from_millis(12),
        }
    }

    /// Multiplicative penalty on the *first* execution in a fresh runtime
    /// (JIT compilation, bytecode verification, lazy imports). Subsequent
    /// executions in the same runtime run at 1.0×.
    pub fn first_exec_penalty(self) -> f64 {
        match self {
            LanguageRuntime::Python => 1.08,
            LanguageRuntime::Go => 1.02,
            LanguageRuntime::Java => 1.45,
            LanguageRuntime::NodeJs => 1.12,
            LanguageRuntime::Ruby => 1.10,
            LanguageRuntime::Native => 1.01,
        }
    }

    /// Resident memory of the idle runtime inside a live container, beyond
    /// the container's own overhead.
    pub fn idle_mem_bytes(self) -> u64 {
        match self {
            LanguageRuntime::Python => 9 * 1024 * 1024,
            LanguageRuntime::Go => 2 * 1024 * 1024,
            LanguageRuntime::Java => 48 * 1024 * 1024,
            LanguageRuntime::NodeJs => 14 * 1024 * 1024,
            LanguageRuntime::Ruby => 11 * 1024 * 1024,
            LanguageRuntime::Native => 512 * 1024,
        }
    }

    /// Conventional name used in runtime keys and report tables.
    pub fn name(self) -> &'static str {
        match self {
            LanguageRuntime::Python => "python",
            LanguageRuntime::Go => "go",
            LanguageRuntime::Java => "java",
            LanguageRuntime::NodeJs => "nodejs",
            LanguageRuntime::Ruby => "ruby",
            LanguageRuntime::Native => "native",
        }
    }
}

impl std::fmt::Display for LanguageRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl stdshim::ToJson for LanguageRuntime {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_boots_slowest_go_fastest_of_managed() {
        let managed = [
            LanguageRuntime::Python,
            LanguageRuntime::Go,
            LanguageRuntime::Java,
            LanguageRuntime::NodeJs,
        ];
        let slowest = managed.iter().max_by_key(|r| r.cold_init()).unwrap();
        let fastest = managed.iter().min_by_key(|r| r.cold_init()).unwrap();
        assert_eq!(*slowest, LanguageRuntime::Java);
        assert_eq!(*fastest, LanguageRuntime::Go);
    }

    #[test]
    fn jit_penalty_largest_for_java() {
        for r in LanguageRuntime::ALL {
            assert!(r.first_exec_penalty() >= 1.0);
            if r != LanguageRuntime::Java {
                assert!(r.first_exec_penalty() < LanguageRuntime::Java.first_exec_penalty());
            }
        }
    }

    #[test]
    fn names_round_trip_display() {
        for r in LanguageRuntime::ALL {
            assert_eq!(format!("{r}"), r.name());
        }
    }

    #[test]
    fn jvm_memory_dominates() {
        let max = LanguageRuntime::ALL
            .iter()
            .max_by_key(|r| r.idle_mem_bytes())
            .copied()
            .unwrap();
        assert_eq!(max, LanguageRuntime::Java);
    }
}
