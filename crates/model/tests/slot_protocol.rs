//! The real lock-free slot protocol under the bounded model checker.
//!
//! Compiled only in the instrumented build
//! (`RUSTFLAGS='--cfg hotc_model' cargo test -p hotc-model`): the stdshim
//! facade then routes every `SlotBitmap`/`KeySlots` atomic through the
//! scheduler, and `hotc_core::shard::model_api` exposes the protocol ops.
//!
//! Setup convention: state created and seeded on the root virtual thread
//! *before* spawning racers is visible to all of them (spawn copies the
//! parent's vector clock) — exactly the happens-before the shard lock gives
//! the real publish/retire/evict paths.
#![cfg(hotc_model)]

use containersim::ContainerId;
use hotc::shard::model_api::ModelSlots;
use hotc_model::{spawn, Checker};
use std::sync::Arc;
use stdshim::SlotBitmap;

const C1: ContainerId = ContainerId(1);
const C2: ContainerId = ContainerId(2);

fn checker() -> Checker {
    // The env budget (HOTC_MODEL_BUDGET) still applies; bound 2 preemptions.
    Checker::new().preemption_bound(2)
}

#[test]
fn bitmap_claims_are_exclusive() {
    // Two lock-free claimers race one released bit: at most one may win,
    // and the bit must end claimed (claimed-xor-set is conservation).
    checker().check(|| {
        let b = Arc::new(SlotBitmap::labeled(8, "model/bitmap"));
        assert!(b.release(3));
        let b2 = Arc::clone(&b);
        let t = spawn(move || b2.claim());
        let mine = b.claim();
        let theirs = t.join();
        assert!(
            !(mine.is_some() && theirs.is_some()),
            "both claimers won the same bit"
        );
        assert!(
            mine.is_some() || theirs.is_some(),
            "released bit vanished: no claimer won"
        );
        assert_eq!(b.count(), 0, "won bit still set");
    });
}

#[test]
fn double_release_is_rejected_in_all_interleavings() {
    // Two threads race the release of the same claimed slot (the stale
    // reverse-index / duplicate-release shape): exactly one
    // try_claim_release may win in every schedule.
    checker().check(|| {
        let s = Arc::new(ModelSlots::new(2));
        s.publish_avail(C1, false).expect("free slot");
        let (i, c, _) = s.claim_warm().expect("setup claim");
        assert_eq!(c, C1);
        let s2 = Arc::clone(&s);
        let t = spawn(move || s2.try_claim_release(i, C1));
        let mine = s.try_claim_release(i, C1);
        let theirs = t.join();
        assert!(
            !(mine && theirs),
            "double release: both claimed the in_use bit"
        );
        assert!(mine || theirs, "owned slot refused both releases");
        // The winner completes the hand-back; the slot must come back warm.
        s.hand_back(i, C1);
        assert!(s.avail_contains(C1));
        assert_eq!(s.in_use_count(), 0);
    });
}

#[test]
fn warm_acquire_release_vs_retire() {
    // A lock-free acquire/hand-back races the controller's retire (which
    // holds the shard lock in production — here the only lock-holder in
    // flight). Conservation: the container is either retired or warm at
    // the end, never both, never lost, never double-owned.
    checker().check(|| {
        let s = Arc::new(ModelSlots::new(1));
        s.publish_avail(C1, true).expect("free slot");
        let s2 = Arc::clone(&s);
        let t = spawn(move || {
            if let Some((i, c, execed)) = s2.claim_warm() {
                assert_eq!(c, C1, "claimed entry must be fully published");
                assert!(execed, "published execed flag lost");
                assert!(s2.try_claim_release(i, c), "sole owner releases its slot");
                s2.hand_back(i, c);
                true
            } else {
                false
            }
        });
        let retired = s.retire_avail();
        let acquired = t.join();
        t_join_invariants(&s, retired, acquired);
    });
}

fn t_join_invariants(s: &ModelSlots, retired: Option<ContainerId>, acquired: bool) {
    if let Some(c) = retired {
        assert_eq!(c, C1, "retire disposed a half-published entry");
    }
    assert_eq!(s.in_use_count(), 0, "all claims released");
    match retired {
        // Retired: the slot is gone for good. The acquirer may or may not
        // have gotten its turn first, but after its hand-back the retire
        // took the slot, or the retire won outright.
        Some(_) => {
            assert!(!s.avail_contains(C1), "retired container still warm");
            assert_eq!(s.free_count(), 1, "disposed slot returns to free");
        }
        // Retire lost the race and found nothing: the acquirer must have
        // held the slot at that instant and handed it back after.
        None => {
            assert!(acquired, "nobody held the slot yet retire found nothing");
            assert!(s.avail_contains(C1), "handed-back container not warm");
        }
    }
}

#[test]
fn warm_acquire_vs_evict_is_exclusive() {
    // Eviction re-verifies the entry then claims the avail bit; a racing
    // warm acquire takes the same bit. Exactly one side may own the
    // container — never both, and (with the claimer not handing back) the
    // bit can be taken at most once, so never neither.
    checker().check(|| {
        let s = Arc::new(ModelSlots::new(1));
        let i = s.publish_avail(C1, false).expect("free slot");
        let s2 = Arc::clone(&s);
        let t = spawn(move || s2.claim_warm().is_some());
        let evicted = s.evict_at(i, C1);
        let acquired = t.join();
        assert!(
            acquired ^ evicted,
            "avail bit owned by {} parties",
            if acquired { 2 } else { 0 }
        );
        if evicted {
            assert_eq!(s.free_count(), 1, "evicted slot disposed back to free");
            assert!(!s.avail_contains(C1));
        } else {
            assert_eq!(s.in_use_count(), 1, "acquirer holds the slot");
        }
    });
}

#[test]
fn cold_publish_vs_racing_claims_upholds_publish_before_bit_set() {
    // The tentpole invariant: a claimer that wins an avail bit must see the
    // complete entry (container id and execed flag) that was stored before
    // the release bit-set — across every interleaving of a cold publish
    // with two racing claimers. claim_warm's internal
    // debug_assert_ne!(entry, 0) is armed too: a torn publish panics the
    // schedule even before our asserts run.
    checker().check(|| {
        let s = Arc::new(ModelSlots::new(2));
        s.publish_avail(C1, true).expect("free slot");
        let s2 = Arc::clone(&s);
        let publisher = spawn(move || s2.publish_avail(C2, false));
        let s3 = Arc::clone(&s);
        let claimer = spawn(move || s3.claim_warm());
        let mine = s.claim_warm();
        let published = publisher.join();
        let theirs = claimer.join();
        assert!(published.is_some(), "second slot was free");
        let mut seen = Vec::new();
        for got in [mine, theirs].into_iter().flatten() {
            let (_, c, execed) = got;
            assert!(
                (c, execed) == (C1, true) || (c, execed) == (C2, false),
                "claimed a torn entry: {c:?}/{execed}"
            );
            seen.push(c);
        }
        seen.sort_unstable_by_key(|c| c.0);
        seen.dedup();
        assert_eq!(
            seen.len(),
            [mine, theirs].into_iter().flatten().count(),
            "two claimers handed the same container"
        );
        assert!(
            !seen.is_empty(),
            "at least the pre-spawned C1 was claimable by someone"
        );
    });
}

#[test]
fn protocol_suite_exhausts_within_bound() {
    // The acceptance-criteria form: the acquire/release-vs-retire race is
    // not just violation-free but *exhausted* within the preemption bound
    // (complete=true means the DFS tree ended, not the budget).
    let report = checker().try_check(|| {
        let s = Arc::new(ModelSlots::new(1));
        s.publish_avail(C1, true).expect("free slot");
        let s2 = Arc::clone(&s);
        let t = spawn(move || {
            if let Some((i, c, _)) = s2.claim_warm() {
                assert!(s2.try_claim_release(i, c));
                s2.hand_back(i, c);
            }
        });
        let _ = s.retire_avail();
        t.join();
    });
    assert!(report.violation.is_none(), "protocol is clean");
    assert!(
        report.complete,
        "schedule tree not exhausted within budget ({} schedules)",
        report.schedules
    );
    assert!(report.schedules > 10, "race actually explored");
}
