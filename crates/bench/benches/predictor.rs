//! Predictor micro-benchmarks: the per-control-step CPU cost of Eq. 1,
//! Eq. 2, and the combined model (runs once per runtime type per interval).

use criterion::{criterion_group, criterion_main, Criterion};
use predictor::{EsMarkov, ExponentialSmoothing, MarkovChain, Predictor, RegionPartition};
use std::hint::black_box;

fn demand_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = if (i / 10) % 2 == 0 { 8.0 } else { 19.0 };
            base + (i % 3) as f64
        })
        .collect()
}

fn bench_smoothing_step(c: &mut Criterion) {
    c.bench_function("predictor/es_observe_predict", |b| {
        let mut es = ExponentialSmoothing::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            es.observe((i % 23) as f64);
            black_box(es.predict())
        })
    });
}

fn bench_markov_fit(c: &mut Criterion) {
    let series = demand_series(256);
    c.bench_function("predictor/markov_fit_256", |b| {
        b.iter(|| black_box(MarkovChain::fit(black_box(&series), 6)))
    });
}

fn bench_markov_kstep(c: &mut Criterion) {
    let chain = MarkovChain::fit(&demand_series(256), 6);
    c.bench_function("predictor/markov_4step_matrix", |b| {
        b.iter(|| black_box(chain.k_step_matrix(4)))
    });
}

fn bench_combined_step(c: &mut Criterion) {
    // The actual controller workload: one observe+predict per interval,
    // including the windowed chain rebuild.
    c.bench_function("predictor/es_markov_observe_predict", |b| {
        let mut p = EsMarkov::paper_default();
        for x in demand_series(64) {
            p.observe(x);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.observe((8 + (i % 12)) as f64);
            black_box(p.predict())
        })
    });
}

fn bench_partition_lookup(c: &mut Criterion) {
    let partition = RegionPartition::new(0.0, 100.0, 8);
    c.bench_function("predictor/region_state_of", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 13.7) % 120.0;
            black_box(partition.state_of(x))
        })
    });
}

criterion_group!(
    benches,
    bench_smoothing_step,
    bench_markov_fit,
    bench_markov_kstep,
    bench_combined_step,
    bench_partition_lookup
);
criterion_main!(benches);
