//! Lock-free slot primitives for the warm request path.
//!
//! The pool's warm hit must be a handful of atomic operations, not a mutex
//! acquisition (DESIGN.md §5). This module provides the two building blocks:
//!
//! * [`SlotBitmap`] — a fixed-capacity bitmap free-list over `AtomicU64`
//!   words. A set bit means "this slot index is available in this bitmap's
//!   domain"; [`SlotBitmap::claim`] finds a set bit and CAS-clears it,
//!   [`SlotBitmap::release`] sets it back. Claim uses `Acquire` and release
//!   uses `Release` ordering, so everything a publisher wrote to a slot's
//!   backing storage *before* setting the bit is visible to the claimer
//!   after a successful claim — the publish-before-bit-set invariant the
//!   pool relies on.
//! * [`LazySlotTable`] — a two-level `OnceLock` table giving wait-free
//!   reads of densely indexed entries (per-key slot groups, per-container
//!   reverse index) without locking, growing one chunk at a time on first
//!   touch.
//!
//! Like the lock wrappers in [`crate::sync`], a `SlotBitmap` carries a
//! `&'static str` class label (convention: `"subsystem/role"`). The bitmap
//! is not a lock — claiming a bit never blocks and never counts against the
//! request-path scope assertion — but the label names the bitmap in misuse
//! panics (out-of-range indices, double release in debug builds), keeping
//! the diagnostics story uniform with the sanitizer's.
//!
//! Everything here is safe Rust over the [`crate::atomic`] facade — plain
//! `std::sync::atomic` in normal builds, the instrumented model-checker
//! types under `--cfg hotc_model` (the `atomic-facade` lint rule keeps raw
//! atomic imports out of this module); the workspace denies `unsafe_code`.

use crate::atomic::{Ordering, ShimAtomicU64 as AtomicU64, ShimOnceLock as OnceLock};

/// A fixed-capacity atomic bitmap free-list.
///
/// Bit `i` set ⇒ slot `i` is available to be claimed. All transitions are
/// single-word CAS/RMW operations:
///
/// * [`claim`](Self::claim) — find any set bit, clear it (`Acquire`), return
///   its index. The returned index is exclusively owned by the caller until
///   it is [`release`](Self::release)d.
/// * [`claim_at`](Self::claim_at) — clear one specific bit if set
///   (`Acquire`); used by lock-holding paths (evict, retire) that target a
///   known slot.
/// * [`release`](Self::release) — set bit `i` (`Release`). Returns `false`
///   if the bit was already set: a release of an unclaimed slot is rejected
///   rather than silently double-freeing the index.
///
/// Orderings: a claimer that observes a set bit via the `Acquire` CAS also
/// observes every store the releaser made before its `Release` set. That is
/// the only cross-slot guarantee; counting and snapshot reads are advisory.
#[derive(Debug)]
pub struct SlotBitmap {
    words: Box<[AtomicU64]>,
    capacity: usize,
    class: &'static str,
}

impl SlotBitmap {
    /// Creates an all-clear bitmap for `capacity` slots with a diagnostic
    /// class label (convention: `"subsystem/role"`, e.g. `"pool/slots"`).
    pub fn labeled(capacity: usize, class: &'static str) -> Self {
        let words = (0..capacity.div_ceil(64))
            .map(|_| AtomicU64::new(0))
            .collect();
        SlotBitmap {
            words,
            capacity,
            class,
        }
    }

    /// Number of slots this bitmap indexes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The diagnostic class label given at construction.
    pub fn class(&self) -> &'static str {
        self.class
    }

    #[inline]
    fn locate(&self, index: usize) -> (usize, u64) {
        assert!(
            index < self.capacity,
            "SlotBitmap '{}': index {} out of range (capacity {})",
            self.class,
            index,
            self.capacity
        );
        (index / 64, 1u64 << (index % 64))
    }

    /// Claims the lowest-index set bit: clears it and returns its index, or
    /// `None` if every bit is clear. `Acquire` on success — the caller sees
    /// everything published before the matching [`release`](Self::release).
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        for (w, word) in self.words.iter().enumerate() {
            let mut current = word.load(Ordering::Relaxed);
            while current != 0 {
                let bit = current.trailing_zeros() as usize;
                match word.compare_exchange_weak(
                    current,
                    current & !(1u64 << bit),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(w * 64 + bit),
                    Err(actual) => current = actual,
                }
            }
        }
        None
    }

    /// Claims bit `index` specifically. Returns `true` if this call cleared
    /// it (`Acquire`), `false` if it was already clear.
    #[inline]
    pub fn claim_at(&self, index: usize) -> bool {
        let (w, mask) = self.locate(index);
        self.words[w].fetch_and(!mask, Ordering::Acquire) & mask != 0
    }

    /// Releases slot `index` back into the bitmap (`Release`): every store
    /// made before this call is visible to whichever thread next claims the
    /// bit. Returns `false` — rejecting the release — if the bit was already
    /// set, which means the caller did not own the slot.
    #[inline]
    pub fn release(&self, index: usize) -> bool {
        let (w, mask) = self.locate(index);
        self.words[w].fetch_or(mask, Ordering::Release) & mask == 0
    }

    /// Mutation-harness variant of [`release`](Self::release) with the
    /// ordering deliberately weakened to `Relaxed` — it exists only in
    /// model-checker builds so `hotc-model/tests/mutation.rs` can prove the
    /// checker catches a publish that skips the release fence. Never a
    /// production code path.
    #[cfg(hotc_model)]
    pub fn release_relaxed(&self, index: usize) -> bool {
        let (w, mask) = self.locate(index);
        // lint:allow(atomic-ordering, deliberately weak: the mutation harness proves the checker catches this)
        self.words[w].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Whether bit `index` is currently set (`Acquire`; advisory — another
    /// thread may claim or release it immediately after the load).
    #[inline]
    pub fn is_set(&self, index: usize) -> bool {
        let (w, mask) = self.locate(index);
        self.words[w].load(Ordering::Acquire) & mask != 0
    }

    /// Number of set bits (advisory snapshot; see [`is_set`](Self::is_set)).
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Atomically claims *every* set bit word-by-word, returning the claimed
    /// indices in ascending order. Equivalent to looping
    /// [`claim`](Self::claim) to exhaustion, but one `swap` per word.
    pub fn drain(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (w, word) in self.words.iter().enumerate() {
            let mut got = word.swap(0, Ordering::Acquire);
            while got != 0 {
                out.push(w * 64 + got.trailing_zeros() as usize);
                got &= got - 1;
            }
        }
        out
    }

    /// Calls `f` for each set bit in an `Acquire` snapshot taken word by
    /// word (bits may change concurrently; indices are ascending).
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (w, word) in self.words.iter().enumerate() {
            let mut got = word.load(Ordering::Acquire);
            while got != 0 {
                f(w * 64 + got.trailing_zeros() as usize);
                got &= got - 1;
            }
        }
    }
}

/// A two-level lazily populated table with wait-free reads.
///
/// Conceptually `Vec<OnceLock<T>>` with a fixed maximum capacity, but the
/// backbone is a boxed slice of chunk `OnceLock`s so that:
///
/// * [`get`](Self::get) is two atomic loads and never blocks or allocates —
///   safe on the zero-lock warm path;
/// * memory grows one chunk (`chunk_size` entries) at a time on first
///   [`get_or_init`](Self::get_or_init) into that chunk;
/// * entries, once initialized, live at a stable address for the table's
///   lifetime (readers hold `&T` across concurrent inits elsewhere).
///
/// Indices at or beyond `capacity()` return `None`; callers fall back to
/// their locked slow path. Entries are never deinitialized — the value for
/// a dense id is expected to be reusable across that id's lifetimes (the
/// pool stores per-key slot groups that survive GC emptied, not freed).
#[derive(Debug)]
pub struct LazySlotTable<T> {
    chunks: Box<[OnceLock<Chunk<T>>]>,
    chunk_size: usize,
}

/// One lazily allocated run of `chunk_size` entry cells.
type Chunk<T> = Box<[OnceLock<T>]>;

impl<T> LazySlotTable<T> {
    /// Creates a table of `chunk_count × chunk_size` addressable entries;
    /// no chunk is allocated until first touched.
    pub fn new(chunk_count: usize, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "LazySlotTable chunk_size must be non-zero");
        LazySlotTable {
            chunks: (0..chunk_count).map(|_| OnceLock::new()).collect(),
            chunk_size,
        }
    }

    /// Total addressable entries (initialized or not).
    pub fn capacity(&self) -> usize {
        self.chunks.len() * self.chunk_size
    }

    /// Wait-free read of entry `index`: `None` if out of range or not yet
    /// initialized.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        let chunk = self.chunks.get(index / self.chunk_size)?.get()?;
        chunk[index % self.chunk_size].get()
    }

    /// Returns entry `index`, initializing it (and its chunk) via `init` if
    /// absent. `None` only when `index` is out of range — the caller's cue
    /// to use its locked fallback. May block briefly if another thread is
    /// initializing the same entry or chunk (cold paths only).
    pub fn get_or_init(&self, index: usize, init: impl FnOnce() -> T) -> Option<&T> {
        let slot = self.chunks.get(index / self.chunk_size)?;
        let chunk = slot.get_or_init(|| (0..self.chunk_size).map(|_| OnceLock::new()).collect());
        Some(chunk[index % self.chunk_size].get_or_init(init))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn claim_release_round_trip() {
        let b = SlotBitmap::labeled(8, "test/bitmap");
        assert_eq!(b.claim(), None, "fresh bitmap has nothing to claim");
        assert!(b.release(3), "first release accepted");
        assert!(b.is_set(3));
        assert_eq!(b.count(), 1);
        assert_eq!(b.claim(), Some(3));
        assert!(!b.is_set(3));
        assert_eq!(b.claim(), None);
    }

    #[test]
    fn claim_prefers_lowest_index() {
        let b = SlotBitmap::labeled(128, "test/bitmap");
        for i in [5usize, 70, 127] {
            assert!(b.release(i));
        }
        assert_eq!(b.claim(), Some(5));
        assert_eq!(b.claim(), Some(70));
        assert_eq!(b.claim(), Some(127));
        assert_eq!(b.claim(), None);
    }

    #[test]
    fn word_boundaries() {
        // Indices 63/64/65 straddle the first word boundary; 64 is the
        // low bit of word 1 and must not alias bit 0 of word 0.
        let b = SlotBitmap::labeled(130, "test/bitmap");
        assert!(b.release(63));
        assert!(b.release(64));
        assert!(b.release(65));
        assert!(b.release(129));
        assert!(!b.is_set(0));
        assert!(b.claim_at(64));
        assert!(!b.claim_at(64), "second targeted claim finds bit clear");
        assert!(b.is_set(63));
        assert!(b.is_set(65));
        assert_eq!(b.drain(), vec![63, 65, 129]);
    }

    #[test]
    fn full_bitmap_claims_every_slot_once() {
        // Capacity deliberately not a multiple of 64: the tail word's
        // unused high bits must never be claimable.
        let cap = 100usize;
        let b = SlotBitmap::labeled(cap, "test/bitmap");
        for i in 0..cap {
            assert!(b.release(i));
        }
        assert!(!b.release(0), "full bitmap rejects further releases");
        assert_eq!(b.count(), cap);
        let mut seen = Vec::new();
        while let Some(i) = b.claim() {
            seen.push(i);
        }
        assert_eq!(seen, (0..cap).collect::<Vec<_>>());
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn release_of_unclaimed_is_rejected() {
        let b = SlotBitmap::labeled(64, "test/bitmap");
        assert!(b.release(10));
        assert!(!b.release(10), "double release rejected");
        assert_eq!(b.claim(), Some(10));
        assert!(b.release(10), "release after claim accepted again");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics_with_class() {
        let b = SlotBitmap::labeled(10, "test/bitmap");
        b.release(10);
    }

    #[test]
    fn drain_empties_and_reports() {
        let b = SlotBitmap::labeled(200, "test/bitmap");
        assert_eq!(b.drain(), Vec::<usize>::new());
        for i in (0..200).step_by(7) {
            assert!(b.release(i));
        }
        let drained = b.drain();
        assert_eq!(drained, (0..200).step_by(7).collect::<Vec<_>>());
        assert_eq!(b.count(), 0);
        assert_eq!(b.claim(), None);
    }

    #[test]
    fn for_each_set_snapshots_ascending() {
        let b = SlotBitmap::labeled(70, "test/bitmap");
        for i in [2usize, 63, 64, 69] {
            assert!(b.release(i));
        }
        let mut seen = Vec::new();
        b.for_each_set(|i| seen.push(i));
        assert_eq!(seen, vec![2, 63, 64, 69]);
        assert_eq!(b.count(), 4, "for_each_set does not consume bits");
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        // 8 threads race to claim 256 released slots; every slot must be
        // claimed exactly once across all threads.
        let b = Arc::new(SlotBitmap::labeled(256, "test/bitmap"));
        for i in 0..256 {
            assert!(b.release(i));
        }
        let mut all: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(i) = b.claim() {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("claimer thread"))
                .collect()
        });
        all.sort_unstable();
        assert_eq!(all, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn lazy_table_get_or_init_is_stable() {
        let t: LazySlotTable<String> = LazySlotTable::new(4, 8);
        assert_eq!(t.capacity(), 32);
        assert_eq!(t.get(5), None);
        let v = t.get_or_init(5, || "five".to_string()).expect("in range");
        assert_eq!(v, "five");
        // Second init is ignored; the first value wins.
        let again = t.get_or_init(5, || "other".to_string()).expect("in range");
        assert_eq!(again, "five");
        assert_eq!(t.get(5).map(String::as_str), Some("five"));
        // Out of range → None, never a panic: callers fall back to locks.
        assert_eq!(t.get(32), None);
        assert!(t.get_or_init(32, String::new).is_none());
    }

    #[test]
    fn lazy_table_concurrent_first_touch_initializes_once() {
        let t: Arc<LazySlotTable<usize>> = Arc::new(LazySlotTable::new(2, 64));
        let inits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = Arc::clone(&t);
                let inits = Arc::clone(&inits);
                s.spawn(move || {
                    for i in 0..128 {
                        let v = t
                            .get_or_init(i, || {
                                inits.fetch_add(1, Ordering::Relaxed);
                                i * 10
                            })
                            .expect("in range");
                        assert_eq!(*v, i * 10);
                    }
                });
            }
        });
        assert_eq!(inits.load(Ordering::Relaxed), 128, "each entry inits once");
    }
}
