//! `hotc-sim` — run HotC serverless scenarios from plain-text files.

use hotc_cli::scenario::{Scenario, DEMO_SCENARIO};
use std::io::Read as _;

fn usage() -> ! {
    eprintln!(
        "usage: hotc-sim <scenario-file> [--verbose] [--metrics-out <path>] [--replay-threads <n>]\n       hotc-sim -        (read scenario from stdin)\n       hotc-sim --demo   (print an example scenario)"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // `--metrics-out <path>`: write the run's MetricsSnapshot as JSON.
    let metrics_out = match args.iter().position(|a| a == "--metrics-out") {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Some(args.remove(i))
        }
        Some(_) => usage(),
        None => None,
    };

    // `--replay-threads <n>`: parallel replay, overriding the scenario's
    // `replay_threads` key if both are given.
    let replay_threads = match args.iter().position(|a| a == "--replay-threads") {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            let v = args.remove(i);
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    eprintln!("bad --replay-threads '{v}': need an integer >= 1");
                    std::process::exit(2);
                }
            }
        }
        Some(_) => usage(),
        None => None,
    };

    if args.is_empty() {
        usage();
    }
    if args[0] == "--demo" {
        print!("{DEMO_SCENARIO}");
        return;
    }
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");

    let text = if args[0] == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("error reading stdin: {e}");
                std::process::exit(1);
            });
        buf
    } else {
        std::fs::read_to_string(&args[0]).unwrap_or_else(|e| {
            eprintln!("error reading '{}': {e}", args[0]);
            std::process::exit(1);
        })
    };

    let scenario = Scenario::parse(&text).unwrap_or_else(|e| {
        eprintln!("scenario parse error: {e}");
        std::process::exit(1);
    });
    let report = match replay_threads.or(scenario.replay_threads) {
        Some(threads) if threads > 1 => hotc_cli::run_scenario_parallel(&scenario, threads),
        _ => hotc_cli::run_scenario(&scenario),
    }
    .unwrap_or_else(|e| {
        eprintln!("scenario error: {e}");
        std::process::exit(1);
    });
    if report.limits_coupled {
        eprintln!(
            "note: pool limits evicted containers during a parallel replay; \
             results may differ slightly from a sequential run"
        );
    }
    if let Some(path) = metrics_out {
        use stdshim::ToJson as _;
        let json = report.metrics.to_json().to_pretty_string();
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| {
            eprintln!("error writing metrics to '{path}': {e}");
            std::process::exit(1);
        });
        eprintln!("wrote metrics snapshot to {path}");
    }
    print!("{}", report.render(verbose));
}
