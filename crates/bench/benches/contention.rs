//! Lock-contention benchmark: real OS threads sharing one HotC gateway,
//! measuring control-plane throughput as parallelism grows. The global-lock
//! gateway is driven at 1–8 threads (the legacy comparison); the sharded
//! gateway is driven across [`hotc_bench::CONTENTION_THREADS`] (1–32), the
//! curve the CI perf gate checks. The virtual execution happens outside any
//! lock, so this isolates the pool bookkeeping — the scalability question
//! for the paper's middleware design.
//!
//! Each iteration issues `threads x requests_per_thread` requests, so with
//! perfect scaling the per-iteration mean is flat as threads grow; the
//! recorded `scaling_efficiency_{n}` derived metric is exactly
//! `mean_ns(1 thread) / mean_ns(n threads)` — throughput at n divided by
//! n times the single-thread throughput.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::{AppProfile, Gateway};
use hotc::{ConcurrentGateway, FunctionHandle, HotC, ShardedGateway};
use hotc_bench::{Harness, CONTENTION_THREADS};
use simclock::shared::ThreadTimeline;
use simclock::{SimDuration, SimTime};
use std::sync::Arc;

/// A deployment-shaped configuration: serverless functions routinely carry a
/// dozen environment variables (endpoints, credentials, tuning), and every
/// one of them is part of the runtime key the pool must derive per request.
/// Under the global lock that derivation serializes; sharded, it parallelizes.
fn function_config(app: &AppProfile, i: usize) -> containersim::ContainerConfig {
    let mut config = app.default_config();
    config.exec.env.insert("SHARD".into(), i.to_string());
    for (k, v) in [
        ("AWS_REGION", "us-east-1"),
        ("STAGE", "production"),
        ("LOG_LEVEL", "info"),
        ("DB_ENDPOINT", "db.internal.example.com:5432"),
        ("CACHE_ENDPOINT", "cache.internal.example.com:6379"),
        ("QUEUE_URL", "https://queue.example.com/prod/jobs"),
        ("BUCKET", "artifacts-prod-us-east-1"),
        ("API_BASE", "https://api.example.com/v2"),
        ("TIMEOUT_MS", "30000"),
        ("RETRIES", "3"),
        ("FEATURE_FLAGS", "qr_v2,fast_path"),
        ("TRACE_SAMPLE_RATE", "0.01"),
    ] {
        config.exec.env.insert(k.into(), v.into());
    }
    config
}

fn shared_gateway(functions: usize) -> Arc<ConcurrentGateway<HotC>> {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, HotC::with_defaults());
    for i in 0..functions {
        let app = AppProfile::qr_code(LanguageRuntime::Go);
        let config = function_config(&app, i);
        gw.register(
            faas::FunctionSpec::from_app(app)
                .named(format!("fn-{i}"))
                .with_config(config),
        );
    }
    let shared = Arc::new(ConcurrentGateway::new(gw));
    // Prime one runtime per function so the benchmark measures reuse.
    let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
    for i in 0..functions {
        shared
            .handle(&format!("fn-{i}"), &mut timeline)
            .expect("prime");
    }
    shared
}

fn sharded_gateway_setup(functions: usize) -> Arc<ShardedGateway> {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let gw = ShardedGateway::with_defaults(engine);
    for i in 0..functions {
        let app = AppProfile::qr_code(LanguageRuntime::Go);
        let config = function_config(&app, i);
        gw.register(
            faas::FunctionSpec::from_app(app)
                .named(format!("fn-{i}"))
                .with_config(config),
        );
    }
    let shared = Arc::new(gw);
    // Prime one runtime per function so the benchmark measures reuse.
    let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
    for i in 0..functions {
        shared
            .handle(&format!("fn-{i}"), &mut timeline)
            .expect("prime");
    }
    shared
}

fn bench_contention(h: &mut Harness) {
    // Fewer requests per iteration in smoke mode keeps CI under a second.
    let requests_per_thread = if h.is_smoke() { 50usize } else { 500 };
    for &threads in &[1usize, 2, 4, 8] {
        let gw = shared_gateway(threads.max(2));
        h.bench(&format!("shared_gateway/{threads}_threads"), || {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        let function = format!("fn-{t}");
                        for _ in 0..requests_per_thread {
                            gw.handle(&function, &mut timeline).expect("request");
                            timeline.advance(SimDuration::from_millis(200));
                        }
                    });
                }
            });
        });
    }
    // Same traffic shapes through the sharded frontend: lock-free bitmap
    // claims on the warm path instead of one gateway-wide mutex. Driven
    // further up the curve (16, 32) than the global lock, because this is
    // the side whose scaling the CI gate pins. Handles are pre-resolved so
    // the steady-state request skips even the function-table read lock.
    for &threads in CONTENTION_THREADS {
        let gw = sharded_gateway_setup(threads.max(2));
        let handles: Vec<FunctionHandle> = (0..threads)
            .map(|t| gw.function_handle(&format!("fn-{t}")).expect("registered"))
            .collect();
        h.bench(&format!("sharded_gateway/{threads}_threads"), || {
            std::thread::scope(|s| {
                for handle in &handles {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        for _ in 0..requests_per_thread {
                            gw.handle_with(handle, &mut timeline).expect("request");
                            timeline.advance(SimDuration::from_millis(200));
                        }
                    });
                }
            });
        });
    }
    // Scaling efficiency: work per iteration grows with the thread count,
    // so efficiency reduces to mean(1)/mean(n). 1.0 is perfect scaling.
    if let Some(base) = h.mean_of("sharded_gateway/1_threads") {
        for &threads in CONTENTION_THREADS {
            if let Some(mean) = h.mean_of(&format!("sharded_gateway/{threads}_threads")) {
                h.record_derived(
                    &format!("sharded_gateway/scaling_efficiency_{threads}"),
                    base / mean,
                );
            }
        }
    }
}

fn main() {
    let mut h = Harness::new("contention");
    bench_contention(&mut h);
    h.finish();
}
