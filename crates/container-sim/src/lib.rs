#![warn(missing_docs)]

//! Simulated container runtime engine.
//!
//! The HotC paper evaluates against real Docker 1.17; this crate is the
//! substituted substrate: a deterministic model of everything Docker does on
//! the request path that the paper measures —
//!
//! * **images** ([`image`]): a registry of base images made of layers, a
//!   per-host local store, and a pull/unpack cost pipeline (the component the
//!   Alibaba practice report in §III-B targets),
//! * **container lifecycle** ([`container`], [`engine`]): create → start →
//!   exec → stop → remove with a per-stage cost breakdown (resource
//!   allocation, namespace setup, network setup, language runtime
//!   initialization),
//! * **network modes** ([`network`]): `none`, `bridge`, `host`, `container`
//!   (shared-namespace proxy) on a single host, and `host`, `overlay`,
//!   `routing` across hosts — with the setup-cost ratios from Fig. 4(c)
//!   (container ≈ ½ of none; overlay up to 23× host mode),
//! * **language runtimes** ([`runtime`]): Python / Go / Java / Node.js init
//!   and JIT-warmup behaviour from Fig. 4(a)/(b) (Go cold ≈ 3.06× hot; Java's
//!   cold start doubles an already long execution),
//! * **volumes** ([`volume`]): the bind-mounted per-container scratch
//!   directories HotC wipes and remounts to keep reused containers clean
//!   (Algorithm 2),
//! * **host accounting** ([`host`]): used_mem / used_swap / CPU tracking that
//!   feeds HotC's 80 %-memory eviction heuristic and the Fig. 15 overhead
//!   experiment,
//! * **hardware profiles** ([`hardware`]): the Dell PowerEdge T430 server and
//!   Raspberry Pi 3 edge device as cost-model multipliers.
//!
//! All durations are virtual ([`simclock::SimDuration`]); the engine never
//! sleeps. Costs are centralized in [`costmodel`] with the paper-reported
//! ratios cited inline, so calibration is auditable in one place.

pub mod container;
pub mod costmodel;
pub mod engine;
pub mod hardware;
pub mod host;
pub mod image;
pub mod network;
pub mod runtime;
pub mod volume;

pub use container::{ContainerConfig, ContainerId, ContainerState, ExecOptions, IpcMode, UtsMode};
pub use engine::{ContainerEngine, CostBreakdown, EngineError, ExecOutcome};
pub use hardware::HardwareProfile;
pub use host::HostResources;
pub use image::{ImageId, ImageRegistry, ImageSpec, LocalImageStore, PullCost, PullStrategy};
pub use network::{NetworkConfig, NetworkMode, NetworkScope};
pub use runtime::LanguageRuntime;
pub use volume::{VolumeId, VolumeStore};
