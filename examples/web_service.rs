//! A multi-language QR-code web service under randomly-configured client
//! traffic (the paper's Fig. 9 scenario), comparing all four runtime
//! management strategies.
//!
//! ```text
//! cargo run --example web_service
//! ```

use hotc_repro::prelude::*;
use simclock::SimRng;

const LANGS: [LanguageRuntime; 4] = [
    LanguageRuntime::Python,
    LanguageRuntime::Go,
    LanguageRuntime::NodeJs,
    LanguageRuntime::Java,
];

/// Serves `n` requests with randomly chosen language variants; returns the
/// latency recorder and the cold-start count.
fn drive<P: RuntimeProvider>(
    mut gateway: Gateway<P>,
    n: usize,
    seed: u64,
) -> (LatencyRecorder, u64) {
    for (i, lang) in LANGS.iter().enumerate() {
        gateway.register(
            faas::FunctionSpec::from_app(AppProfile::qr_code(*lang)).named(format!("qr-{i}")),
        );
    }
    let mut rng = SimRng::seeded(seed);
    let mut recorder = LatencyRecorder::new();
    for i in 0..n {
        let now = SimTime::from_secs(2 * i as u64);
        let function = format!("qr-{}", rng.index(LANGS.len()));
        let trace = gateway.handle(&function, now).expect("request");
        recorder.record(trace.total());
        gateway.tick(now + SimDuration::from_secs(1)).expect("tick");
    }
    (recorder, gateway.stats().cold_starts)
}

fn main() {
    let n = 60;
    let seed = 2024;
    let mut table = Table::new(
        "QR web service: 60 randomly-configured requests",
        &["backend", "mean_ms", "p50_ms", "p99_ms", "cold_starts"],
    );

    let engine = || ContainerEngine::with_local_images(HardwareProfile::server());
    let rows: Vec<(&str, LatencyRecorder, u64)> = vec![
        {
            let (r, c) = drive(
                Gateway::new(engine(), faas::ColdStartAlways::new()),
                n,
                seed,
            );
            ("cold-start", r, c)
        },
        {
            let (r, c) = drive(
                Gateway::new(engine(), FixedKeepAlive::aws_default()),
                n,
                seed,
            );
            ("fixed-keepalive", r, c)
        },
        {
            let (r, c) = drive(
                Gateway::new(engine(), PeriodicWarmup::new(SimDuration::from_mins(5))),
                n,
                seed,
            );
            ("periodic-warmup", r, c)
        },
        {
            let (r, c) = drive(Gateway::new(engine(), HotC::with_defaults()), n, seed);
            ("hotc", r, c)
        },
    ];

    for (name, recorder, cold) in &rows {
        table.row(&[
            name.to_string(),
            format!("{:.1}", recorder.mean().as_millis_f64()),
            format!("{:.1}", recorder.median().as_millis_f64()),
            format!("{:.1}", recorder.percentile(0.99).as_millis_f64()),
            cold.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(the QR transform itself costs ~60 ms; everything above that is runtime management)");
}
