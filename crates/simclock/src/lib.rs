#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel for the HotC reproduction.
//!
//! Every latency in the reproduction is expressed in *virtual time* so that
//! experiments are exactly reproducible across machines: a request that the
//! paper measures in milliseconds on a Dell PowerEdge T430 is modelled as a
//! [`SimDuration`] and advanced on a virtual clock rather than slept on the
//! host. The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`Simulation`] — a single-threaded event-driven simulation driver,
//! * [`SimRng`] — a seeded random source with the distributions the
//!   workload generators need (uniform, exponential, Poisson, Zipf, normal),
//! * [`SharedClock`] — a thread-safe virtual clock used by the concurrent
//!   (scoped-thread) experiment drivers.
//!
//! # Example
//!
//! ```
//! use simclock::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new(0u64); // state = number of fired events
//! sim.schedule_in(SimDuration::from_millis(5), |sim, n| {
//!     *n += 1;
//!     // chain a follow-up event
//!     sim.schedule_in(SimDuration::from_millis(10), |_, n| *n += 1);
//! });
//! sim.run();
//! assert_eq!(*sim.state(), 2);
//! assert_eq!(sim.now().as_millis(), 15);
//! ```

pub mod queue;
pub mod rng;
pub mod shared;
pub mod sim;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use shared::SharedClock;
pub use sim::{Scheduler, Simulation};
pub use time::{SimDuration, SimTime};
