//! lint-fixture-path: crates/core/src/fixture.rs
fn f() {
    let _t = Instant::now();
    let _w = SystemTime::now();
}
