//! Figure 15: HotC's resource overhead.
//!
//! (a) CPU and memory versus the number of live (idle) containers: ten live
//!     containers add <1 % CPU and ≈0.7 MB memory each — keeping a pool is
//!     cheap.
//! (b) resource timeline of a heavy containerized app (Cassandra-like): the
//!     app's own consumption dwarfs the live container's, and the OS
//!     reclaims app resources promptly when it stops while the container
//!     stays live.

use containersim::engine::ExecWork;
use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
use faas::AppProfile;
use metrics_lite::{Table, TimeSeries};
use simclock::{SimDuration, SimTime};

/// One row of the Fig. 15(a) sweep.
pub struct PoolOverheadSample {
    /// Number of live containers.
    pub live: usize,
    /// CPU usage (fraction of all cores).
    pub cpu: f64,
    /// Used memory in MB.
    pub used_mem_mb: f64,
}

/// Result of the Fig. 15 experiment.
pub struct Fig15Result {
    /// Fig. 15(a): overhead sweep over pool sizes.
    pub sweep: Vec<PoolOverheadSample>,
    /// Marginal memory per live container, MB (paper: ≈0.7 MB + runtime).
    pub mem_per_container_mb: f64,
    /// CPU added by ten live containers (paper: <1 %).
    pub cpu_for_ten: f64,
    /// Fig. 15(b): (time, cpu, mem_mb) samples over the app lifecycle.
    pub timeline_cpu: TimeSeries,
    /// Memory timeline in MB.
    pub timeline_mem: TimeSeries,
    /// When the app started / stopped (seconds).
    pub app_start_s: u64,
    /// App stop time (seconds).
    pub app_stop_s: u64,
}

/// Runs both panels.
pub fn run() -> Fig15Result {
    // (a) Idle alpine containers, like the paper's example.
    let sizes = [0usize, 1, 5, 10, 50, 100, 200, 500];
    let mut sweep = Vec::new();
    let cfg = ContainerConfig::bridge(ImageId::parse("alpine:3.12"));
    for &n in &sizes {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        for i in 0..n {
            engine
                .create_container(cfg.clone(), SimTime::from_secs(i as u64))
                .expect("alpine container");
        }
        let s = engine.host().sample();
        sweep.push(PoolOverheadSample {
            live: n,
            cpu: s.cpu,
            used_mem_mb: s.used_mem as f64 / (1024.0 * 1024.0),
        });
    }
    let base = &sweep[0];
    let ten = sweep.iter().find(|s| s.live == 10).expect("size 10 swept");
    let hundred = sweep
        .iter()
        .find(|s| s.live == 100)
        .expect("size 100 swept");
    let mem_per_container_mb = (hundred.used_mem_mb - base.used_mem_mb) / 100.0;
    let cpu_for_ten = ten.cpu - base.cpu;

    // (b) Cassandra-like lifecycle: container created at t=0, app runs from
    // t=6 s to t=13 s, container kept live afterwards.
    let app = AppProfile::cassandra();
    let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let (id, _) = engine
        .create_container(app.default_config(), SimTime::ZERO)
        .expect("cassandra container");
    let mut timeline_cpu = TimeSeries::new();
    let mut timeline_mem = TimeSeries::new();
    let (start, stop) = (6u64, 13u64);
    for sec in 0..=20u64 {
        let now = SimTime::from_secs(sec);
        if sec == start {
            // Run the app for (stop-start) seconds of virtual time.
            let work = ExecWork {
                compute: SimDuration::from_secs(stop - start),
                ..app.work
            };
            engine.begin_exec(id, work, now).expect("app start");
        }
        if sec == stop {
            engine.end_exec(id, now).expect("app stop");
        }
        let s = engine.host().sample();
        timeline_cpu.push(now, s.cpu);
        timeline_mem.push(now, s.used_mem as f64 / (1024.0 * 1024.0));
    }

    Fig15Result {
        sweep,
        mem_per_container_mb,
        cpu_for_ten,
        timeline_cpu,
        timeline_mem,
        app_start_s: start,
        app_stop_s: stop,
    }
}

impl Fig15Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Fig 15(a): resource usage vs number of live containers",
            &["live", "cpu_%", "used_mem_MB"],
        );
        for s in &self.sweep {
            table.row(&[
                s.live.to_string(),
                format!("{:.2}", s.cpu * 100.0),
                format!("{:.1}", s.used_mem_mb),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "ten live containers add {:.2}% CPU; marginal memory {:.2} MB/container \
             (paper: <1% CPU, ≈0.7 MB + runtime)\n\n",
            self.cpu_for_ten * 100.0,
            self.mem_per_container_mb
        ));

        let mut tl = Table::new(
            "Fig 15(b): Cassandra-like app lifecycle on a live container",
            &["t_s", "cpu_%", "used_mem_MB", "phase"],
        );
        for (i, &(at, cpu)) in self.timeline_cpu.points().iter().enumerate() {
            let sec = at.as_secs();
            let mem = self.timeline_mem.points()[i].1;
            let phase = if sec < self.app_start_s {
                "idle container"
            } else if sec < self.app_stop_s {
                "app running"
            } else {
                "app stopped, container live"
            };
            tl.row(&[
                sec.to_string(),
                format!("{:.2}", cpu * 100.0),
                format!("{mem:.0}"),
                phase.to_string(),
            ]);
        }
        out.push_str(&tl.render());
        out.push_str("(paper: the OS reclaims app resources promptly; the live container itself is negligible)\n");
        out
    }
}
