//! The scenario file format and its parser.
//!
//! Line-based: `key = value` pairs, `[section]` headers, `#` comments.
//! Global keys come first, then any number of `[function <name>]` sections,
//! then one `[workload]` section:
//!
//! ```text
//! # global
//! hardware = server               # server | raspberry-pi3 | jetson-tx2
//! provider = hotc                 # hotc | hotc:fuzzy | cold-start |
//!                                 # fixed-keepalive:15m | periodic-warmup:5m
//! seed     = 42
//! tick     = 30s
//! crash_rate = 0.0                # optional fault injection
//! replay_threads = 4              # optional parallel replay workers
//!
//! [function qr]
//! app     = qr-code               # qr-code | random-number | s3-download |
//!                                 # v3-app | tf-api-app | cassandra
//! lang    = python                # qr-code / s3-download only
//! network = bridge                # none|bridge|host|container|overlay|routing
//! env.TENANT = 1                  # any number of env.* keys
//!
//! [workload]
//! pattern  = burst                # serial | parallel | linear-up | linear-down |
//!                                 # exp-up | exp-down | burst | poisson | youtube
//! base     = 8
//! factor   = 10
//! rounds   = 18
//! burst_at = 4,8,12,16
//! round    = 30s
//! ```
//!
//! Durations accept `ns`, `us`, `ms`, `s`, `m` suffixes. Workload arrivals
//! cycle over the declared functions via their `config_id`.

use containersim::{HardwareProfile, LanguageRuntime, NetworkMode};
use simclock::SimDuration;
use std::collections::BTreeMap;

/// A parse failure, with the 1-based line number where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Which runtime-management provider to run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderSpec {
    /// HotC with exact keys (paper default).
    HotC,
    /// HotC with fuzzy (§VII subset) keys.
    HotCFuzzy,
    /// Fresh container per request.
    ColdStart,
    /// AWS-style keep-alive with the given TTL.
    FixedKeepAlive(SimDuration),
    /// Azure-Logic-style periodic warm-up with the given period.
    PeriodicWarmup(SimDuration),
    /// Azure-style per-type learned keep-alive windows.
    HybridKeepAlive,
}

/// One declared function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (the section header).
    pub name: String,
    /// Application profile name.
    pub app: String,
    /// Language (for per-language apps).
    pub lang: LanguageRuntime,
    /// Network mode.
    pub network: NetworkMode,
    /// Extra environment variables.
    pub env: BTreeMap<String, String>,
    /// Replica count: `replicas = N` registers `N` copies (`name#0` …
    /// `name#N-1`), each with a distinct `HOTC_REPLICA` env var and hence a
    /// distinct runtime key — how a scenario reaches 10k+ keys without 10k
    /// sections.
    pub replicas: usize,
}

/// The workload pattern, mirroring `workloads::patterns`.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// `serial`: `count` requests, `interval` apart (function 0).
    Serial {
        /// Requests to send.
        count: usize,
        /// Gap between requests.
        interval: SimDuration,
    },
    /// `parallel`: `threads` clients × `per_thread` rounds; client *i* calls
    /// function *i mod functions*.
    Parallel {
        /// Concurrent clients.
        threads: usize,
        /// Rounds per client.
        per_thread: usize,
        /// Gap between rounds.
        interval: SimDuration,
    },
    /// `linear-up` / `linear-down`.
    Linear {
        /// Whether the ramp increases.
        increasing: bool,
        /// Starting request count.
        start: usize,
        /// Step per round.
        step: usize,
        /// Number of rounds.
        rounds: usize,
        /// Round length.
        round: SimDuration,
    },
    /// `exp-up` / `exp-down`: 2^i per round.
    Exponential {
        /// Whether the ramp increases.
        increasing: bool,
        /// Number of rounds.
        rounds: u32,
        /// Round length.
        round: SimDuration,
    },
    /// `burst`.
    Burst {
        /// Per-round baseline.
        base: usize,
        /// Burst multiplier.
        factor: usize,
        /// Rounds that burst.
        burst_at: Vec<usize>,
        /// Total rounds.
        rounds: usize,
        /// Round length.
        round: SimDuration,
    },
    /// `poisson`: arrivals at `rate`/s for `duration`, functions picked
    /// Zipf(`zipf`).
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
        /// Total span.
        duration: SimDuration,
        /// Zipf exponent over the declared functions.
        zipf: f64,
    },
    /// `youtube`: the Fig. 11 day shape, rates divided by `scale`, one
    /// `index` per trace point (function 0).
    Youtube {
        /// Rate divisor.
        scale: f64,
        /// Virtual length of one trace index.
        index: SimDuration,
        /// Number of trace indices.
        length: usize,
    },
    /// `azure`: the hot/periodic/rare multi-tenant population. Ignores the
    /// declared function *count* mismatch: arrivals cycle over the declared
    /// functions.
    Azure {
        /// Population size (synthetic functions in the trace).
        functions: usize,
        /// Total span.
        duration: SimDuration,
    },
    /// `synth`: the streaming synthesizer — exactly `requests` arrivals over
    /// `duration`, keys Zipf(`zipf`) over `keys` ids, intensity flat or
    /// diurnal (`shape = diurnal`, `peak` = peak-to-trough ratio).
    Synth {
        /// Total arrivals to emit.
        requests: u64,
        /// Distinct key (config id) population.
        keys: usize,
        /// Total span.
        duration: SimDuration,
        /// Zipf exponent over keys.
        zipf: f64,
        /// Peak-to-trough ratio; 1.0 means flat.
        peak: f64,
    },
    /// `flash-crowd`: diurnal synth plus a triangular spike at fraction `at`
    /// of the span, `width` wide, `magnitude`× the mean rate.
    FlashCrowd {
        /// Total arrivals to emit.
        requests: u64,
        /// Distinct key population.
        keys: usize,
        /// Total span.
        duration: SimDuration,
        /// Zipf exponent over keys.
        zipf: f64,
        /// Diurnal peak-to-trough ratio.
        peak: f64,
        /// Spike centre as a fraction of the span (0..1).
        at: f64,
        /// Spike width as a fraction of the span.
        width: f64,
        /// Spike height as a multiple of the mean rate.
        magnitude: f64,
    },
    /// `deploy-waves`: flat synth whose hot Zipf window shifts `waves` times
    /// across the key space — rolling-deploy key churn.
    DeployWaves {
        /// Total arrivals to emit.
        requests: u64,
        /// Distinct key population.
        keys: usize,
        /// Total span.
        duration: SimDuration,
        /// Zipf exponent over keys.
        zipf: f64,
        /// Number of deploy waves.
        waves: usize,
        /// Hot-window size in keys.
        window: usize,
    },
    /// `multi-tenant`: `tenants` independent synth streams with disjoint key
    /// spaces and staggered flash crowds, k-way merged.
    MultiTenant {
        /// Number of tenants.
        tenants: usize,
        /// Arrivals per tenant.
        requests: u64,
        /// Keys per tenant.
        keys: usize,
        /// Total span.
        duration: SimDuration,
        /// Zipf exponent within each tenant.
        zipf: f64,
    },
    /// `azure-csv`: Azure-Functions-style per-function invocation-count rows
    /// read from `path`, each count bucket `interval` long.
    AzureCsv {
        /// Path to the CSV file.
        path: String,
        /// Length of one count bucket.
        interval: SimDuration,
    },
    /// `opendc`: OpenDC-style `timestamp_ms,function` rows streamed from
    /// `path`.
    OpenDc {
        /// Path to the trace file.
        path: String,
    },
}

/// A fully parsed scenario.
///
/// ```
/// use hotc_cli::Scenario;
///
/// let scenario = Scenario::parse(
///     "provider = hotc\n\
///      [function f]\n\
///      app = qr-code\n\
///      lang = go\n\
///      [workload]\n\
///      pattern = serial\n\
///      count = 5\n",
/// )
/// .unwrap();
/// let report = hotc_cli::run_scenario(&scenario).unwrap();
/// assert_eq!(report.requests, 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Hardware platform.
    pub hardware: HardwareProfile,
    /// Runtime provider.
    pub provider: ProviderSpec,
    /// RNG seed.
    pub seed: u64,
    /// Provider maintenance interval.
    pub tick: SimDuration,
    /// Execution crash probability (fault injection), 0.0 = off.
    pub crash_rate: f64,
    /// Replay worker threads; `None` = sequential replay. Overridable from
    /// the command line with `--replay-threads N`.
    pub replay_threads: Option<usize>,
    /// Declared functions, in declaration order.
    pub functions: Vec<FunctionDecl>,
    /// The workload.
    pub workload: WorkloadSpec,
}

/// Parses a duration literal like `30s`, `15m`, `250ms`, `10us`, `5ns`.
pub fn parse_duration(s: &str, line: usize) -> Result<SimDuration, ParseError> {
    let s = s.trim();
    let split = s
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = match num.parse() {
        Ok(v) => v,
        Err(_) => return err(line, format!("bad duration number '{num}'")),
    };
    let nanos = match unit.trim() {
        "ns" => value,
        "us" => value * 1e3,
        "ms" => value * 1e6,
        "s" | "" => value * 1e9,
        "m" => value * 60e9,
        other => return err(line, format!("unknown duration unit '{other}'")),
    };
    Ok(SimDuration::from_nanos(nanos as u64))
}

fn parse_lang(s: &str, line: usize) -> Result<LanguageRuntime, ParseError> {
    Ok(match s {
        "python" => LanguageRuntime::Python,
        "go" => LanguageRuntime::Go,
        "java" => LanguageRuntime::Java,
        "nodejs" | "node" => LanguageRuntime::NodeJs,
        "ruby" => LanguageRuntime::Ruby,
        "native" => LanguageRuntime::Native,
        other => return err(line, format!("unknown language '{other}'")),
    })
}

fn parse_network(s: &str, line: usize) -> Result<NetworkMode, ParseError> {
    Ok(match s {
        "none" => NetworkMode::None,
        "bridge" => NetworkMode::Bridge,
        "host" => NetworkMode::Host,
        "container" => NetworkMode::Container,
        "overlay" => NetworkMode::Overlay,
        "routing" => NetworkMode::Routing,
        other => return err(line, format!("unknown network mode '{other}'")),
    })
}

#[derive(Debug, PartialEq)]
enum Section {
    Global,
    Function(String),
    Workload,
}

impl Scenario {
    /// Parses a scenario from its text form.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut hardware = HardwareProfile::server();
        let mut provider = ProviderSpec::HotC;
        let mut seed = 0u64;
        let mut tick = SimDuration::from_secs(30);
        let mut crash_rate = 0.0f64;
        let mut replay_threads: Option<usize> = None;
        let mut functions: Vec<FunctionDecl> = Vec::new();
        let mut workload_kv: BTreeMap<String, (String, usize)> = BTreeMap::new();
        let mut saw_workload = false;
        // First-occurrence line per key, reset at each section header, so a
        // second assignment is a hard error instead of a silent overwrite.
        let mut seen_keys: BTreeMap<String, usize> = BTreeMap::new();

        let mut section = Section::Global;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return err(line_no, "unterminated section header");
                };
                let header = header.trim();
                seen_keys.clear();
                section = if header == "workload" {
                    if saw_workload {
                        return err(line_no, "duplicate [workload] section");
                    }
                    saw_workload = true;
                    Section::Workload
                } else if let Some(name) = header.strip_prefix("function") {
                    let name = name.trim();
                    if name.is_empty() {
                        return err(line_no, "function section needs a name");
                    }
                    if functions.iter().any(|f| f.name == name) {
                        return err(line_no, format!("duplicate function '{name}'"));
                    }
                    functions.push(FunctionDecl {
                        name: name.to_string(),
                        app: "random-number".to_string(),
                        lang: LanguageRuntime::Python,
                        network: NetworkMode::Bridge,
                        env: BTreeMap::new(),
                        replicas: 1,
                    });
                    Section::Function(name.to_string())
                } else {
                    return err(line_no, format!("unknown section '[{header}]'"));
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(line_no, format!("expected 'key = value', got '{line}'"));
            };
            let key = key.trim();
            let value = value.trim();
            if let Some(first) = seen_keys.insert(key.to_string(), line_no) {
                return err(
                    line_no,
                    format!("duplicate key '{key}' (first set on line {first})"),
                );
            }
            match &section {
                Section::Global => match key {
                    "hardware" => {
                        hardware = match value {
                            "server" => HardwareProfile::server(),
                            "raspberry-pi3" | "pi" => HardwareProfile::raspberry_pi3(),
                            "jetson-tx2" => HardwareProfile::jetson_tx2(),
                            other => return err(line_no, format!("unknown hardware '{other}'")),
                        }
                    }
                    "provider" => {
                        provider = match value.split_once(':') {
                            None => match value {
                                "hotc" => ProviderSpec::HotC,
                                "cold-start" => ProviderSpec::ColdStart,
                                "hybrid-keepalive" => ProviderSpec::HybridKeepAlive,
                                other => {
                                    return err(line_no, format!("unknown provider '{other}'"))
                                }
                            },
                            Some(("hotc", "fuzzy")) => ProviderSpec::HotCFuzzy,
                            Some(("fixed-keepalive", ttl)) => {
                                ProviderSpec::FixedKeepAlive(parse_duration(ttl, line_no)?)
                            }
                            Some(("periodic-warmup", period)) => {
                                ProviderSpec::PeriodicWarmup(parse_duration(period, line_no)?)
                            }
                            Some((other, _)) => {
                                return err(line_no, format!("unknown provider '{other}'"))
                            }
                        }
                    }
                    "seed" => {
                        seed = value.parse().map_err(|_| ParseError {
                            line: line_no,
                            message: format!("bad seed '{value}'"),
                        })?
                    }
                    "tick" => tick = parse_duration(value, line_no)?,
                    "crash_rate" => {
                        crash_rate = value.parse().map_err(|_| ParseError {
                            line: line_no,
                            message: format!("bad crash_rate '{value}'"),
                        })?;
                        if !(0.0..=1.0).contains(&crash_rate) {
                            return err(line_no, "crash_rate must be in [0,1]");
                        }
                    }
                    "replay_threads" => {
                        let n: usize = value.parse().map_err(|_| ParseError {
                            line: line_no,
                            message: format!("bad replay_threads '{value}'"),
                        })?;
                        if n == 0 {
                            return err(line_no, "replay_threads must be at least 1");
                        }
                        replay_threads = Some(n);
                    }
                    other => return err(line_no, format!("unknown global key '{other}'")),
                },
                Section::Function(_) => {
                    // Entering a function section pushes its declaration, so
                    // one is always present here — but a parser bug should
                    // surface as a parse error, not a panic.
                    let Some(decl) = functions.last_mut() else {
                        return err(line_no, "function key outside a [function] section");
                    };
                    if let Some(env_key) = key.strip_prefix("env.") {
                        decl.env.insert(env_key.to_string(), value.to_string());
                        continue;
                    }
                    match key {
                        "app" => decl.app = value.to_string(),
                        "lang" => decl.lang = parse_lang(value, line_no)?,
                        "network" => decl.network = parse_network(value, line_no)?,
                        "replicas" => {
                            decl.replicas = value.parse().map_err(|_| ParseError {
                                line: line_no,
                                message: format!("bad replicas '{value}'"),
                            })?;
                            if decl.replicas == 0 {
                                return err(line_no, "replicas must be at least 1");
                            }
                        }
                        other => return err(line_no, format!("unknown function key '{other}'")),
                    }
                }
                Section::Workload => {
                    workload_kv.insert(key.to_string(), (value.to_string(), line_no));
                }
            }
        }

        if functions.is_empty() {
            return err(0, "scenario declares no functions");
        }
        if !saw_workload {
            return err(0, "scenario has no [workload] section");
        }
        let workload = Self::parse_workload(&workload_kv)?;
        Ok(Scenario {
            hardware,
            provider,
            seed,
            tick,
            crash_rate,
            replay_threads,
            functions,
            workload,
        })
    }

    fn parse_workload(kv: &BTreeMap<String, (String, usize)>) -> Result<WorkloadSpec, ParseError> {
        let get = |key: &str| kv.get(key).map(|(v, l)| (v.as_str(), *l));
        let get_usize = |key: &str, default: usize| -> Result<usize, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => v.parse().map_err(|_| ParseError {
                    line: l,
                    message: format!("bad integer '{v}' for '{key}'"),
                }),
            }
        };
        let get_f64 = |key: &str, default: f64| -> Result<f64, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => v.parse().map_err(|_| ParseError {
                    line: l,
                    message: format!("bad number '{v}' for '{key}'"),
                }),
            }
        };
        let get_duration = |key: &str, default: SimDuration| -> Result<SimDuration, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => parse_duration(v, l),
            }
        };

        let get_u64 = |key: &str, default: u64| -> Result<u64, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => v.parse().map_err(|_| ParseError {
                    line: l,
                    message: format!("bad integer '{v}' for '{key}'"),
                }),
            }
        };

        let Some((pattern, pattern_line)) = get("pattern") else {
            return err(0, "[workload] needs a 'pattern' key");
        };
        // Every pattern lists the keys it reads; anything else in the section
        // is a typo the run must not silently ignore.
        let allowed: &[&str] = match pattern {
            "serial" => &["count", "interval"],
            "parallel" => &["threads", "per_thread", "interval"],
            "linear-up" | "linear-down" => &["start", "step", "rounds", "round"],
            "exp-up" | "exp-down" => &["rounds", "round"],
            "burst" => &["base", "factor", "burst_at", "rounds", "round"],
            "poisson" => &["rate", "duration", "zipf"],
            "youtube" => &["scale", "index", "length"],
            "azure" => &["functions", "duration"],
            "synth" => &["requests", "keys", "duration", "zipf", "shape", "peak"],
            "flash-crowd" => &[
                "requests",
                "keys",
                "duration",
                "zipf",
                "peak",
                "at",
                "width",
                "magnitude",
            ],
            "deploy-waves" => &["requests", "keys", "duration", "zipf", "waves", "window"],
            "multi-tenant" => &["tenants", "requests", "keys", "duration", "zipf"],
            "azure-csv" => &["path", "interval"],
            "opendc" => &["path"],
            other => return err(pattern_line, format!("unknown pattern '{other}'")),
        };
        for (key, (_, line)) in kv {
            if key != "pattern" && !allowed.contains(&key.as_str()) {
                return err(
                    *line,
                    format!("unknown workload key '{key}' for pattern '{pattern}'"),
                );
            }
        }

        let synth_defaults =
            |kv_peak: f64| -> Result<(u64, usize, SimDuration, f64, f64), ParseError> {
                Ok((
                    get_u64("requests", 100_000)?,
                    get_usize("keys", 100)?,
                    get_duration("duration", SimDuration::from_mins(1440))?,
                    get_f64("zipf", 1.1)?,
                    get_f64("peak", kv_peak)?,
                ))
            };

        let round_default = SimDuration::from_secs(30);
        Ok(match pattern {
            "serial" => WorkloadSpec::Serial {
                count: get_usize("count", 20)?,
                interval: get_duration("interval", round_default)?,
            },
            "parallel" => WorkloadSpec::Parallel {
                threads: get_usize("threads", 10)?,
                per_thread: get_usize("per_thread", 10)?,
                interval: get_duration("interval", round_default)?,
            },
            "linear-up" | "linear-down" => WorkloadSpec::Linear {
                increasing: pattern == "linear-up",
                start: get_usize("start", 2)?,
                step: get_usize("step", 2)?,
                rounds: get_usize("rounds", 10)?,
                round: get_duration("round", round_default)?,
            },
            "exp-up" | "exp-down" => WorkloadSpec::Exponential {
                increasing: pattern == "exp-up",
                rounds: get_usize("rounds", 7)? as u32,
                round: get_duration("round", round_default)?,
            },
            "burst" => {
                let burst_at = match get("burst_at") {
                    None => vec![4, 8, 12, 16],
                    Some((v, l)) => v
                        .split(',')
                        .map(|part| {
                            part.trim().parse().map_err(|_| ParseError {
                                line: l,
                                message: format!("bad burst round '{part}'"),
                            })
                        })
                        .collect::<Result<Vec<usize>, _>>()?,
                };
                WorkloadSpec::Burst {
                    base: get_usize("base", 8)?,
                    factor: get_usize("factor", 10)?,
                    burst_at,
                    rounds: get_usize("rounds", 18)?,
                    round: get_duration("round", round_default)?,
                }
            }
            "poisson" => WorkloadSpec::Poisson {
                rate: get_f64("rate", 2.0)?,
                duration: get_duration("duration", SimDuration::from_secs(600))?,
                zipf: get_f64("zipf", 1.1)?,
            },
            "youtube" => WorkloadSpec::Youtube {
                scale: get_f64("scale", 10.0)?,
                index: get_duration("index", SimDuration::from_secs(300))?,
                length: get_usize("length", 288)?,
            },
            "azure" => WorkloadSpec::Azure {
                functions: get_usize("functions", 20)?,
                duration: get_duration("duration", SimDuration::from_mins(120))?,
            },
            "synth" => {
                let flat = match get("shape") {
                    None | Some(("diurnal", _)) => false,
                    Some(("flat", _)) => true,
                    Some((other, l)) => {
                        return err(l, format!("unknown synth shape '{other}' (flat | diurnal)"))
                    }
                };
                let (requests, keys, duration, zipf, peak) = synth_defaults(3.0)?;
                WorkloadSpec::Synth {
                    requests,
                    keys,
                    duration,
                    zipf,
                    peak: if flat { 1.0 } else { peak },
                }
            }
            "flash-crowd" => {
                let (requests, keys, duration, zipf, peak) = synth_defaults(3.0)?;
                WorkloadSpec::FlashCrowd {
                    requests,
                    keys,
                    duration,
                    zipf,
                    peak,
                    at: get_f64("at", 0.5)?,
                    width: get_f64("width", 0.05)?,
                    magnitude: get_f64("magnitude", 10.0)?,
                }
            }
            "deploy-waves" => {
                let (requests, keys, duration, zipf, _) = synth_defaults(1.0)?;
                WorkloadSpec::DeployWaves {
                    requests,
                    keys,
                    duration,
                    zipf,
                    waves: get_usize("waves", 4)?,
                    window: get_usize("window", 16)?,
                }
            }
            "multi-tenant" => {
                let (requests, keys, duration, zipf, _) = synth_defaults(1.0)?;
                WorkloadSpec::MultiTenant {
                    tenants: get_usize("tenants", 4)?,
                    requests,
                    keys,
                    duration,
                    zipf,
                }
            }
            "azure-csv" => {
                let Some((path, _)) = get("path") else {
                    return err(pattern_line, "pattern 'azure-csv' needs a 'path' key");
                };
                WorkloadSpec::AzureCsv {
                    path: path.to_string(),
                    interval: get_duration("interval", SimDuration::from_mins(1))?,
                }
            }
            "opendc" => {
                let Some((path, _)) = get("path") else {
                    return err(pattern_line, "pattern 'opendc' needs a 'path' key");
                };
                WorkloadSpec::OpenDc {
                    path: path.to_string(),
                }
            }
            other => {
                return err(pattern_line, format!("unknown pattern '{other}'"));
            }
        })
    }
}

/// A commented example scenario (printed by `hotc-sim --demo`).
pub const DEMO_SCENARIO: &str = "\
# hotc-sim demo scenario: the Fig. 14(b) burst experiment
hardware = server
provider = hotc
seed     = 42
tick     = 30s

[function qr]
app     = qr-code
lang    = python
network = bridge

[workload]
pattern  = burst
base     = 8
factor   = 10
rounds   = 18
burst_at = 4,8,12,16
round    = 30s
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_scenario_parses() {
        let s = Scenario::parse(DEMO_SCENARIO).unwrap();
        assert_eq!(s.provider, ProviderSpec::HotC);
        assert_eq!(s.seed, 42);
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "qr");
        assert_eq!(s.functions[0].app, "qr-code");
        assert!(matches!(
            s.workload,
            WorkloadSpec::Burst {
                base: 8,
                factor: 10,
                rounds: 18,
                ..
            }
        ));
    }

    #[test]
    fn durations_parse() {
        assert_eq!(
            parse_duration("30s", 1).unwrap(),
            SimDuration::from_secs(30)
        );
        assert_eq!(
            parse_duration("15m", 1).unwrap(),
            SimDuration::from_mins(15)
        );
        assert_eq!(
            parse_duration("250ms", 1).unwrap(),
            SimDuration::from_millis(250)
        );
        assert_eq!(parse_duration("7", 1).unwrap(), SimDuration::from_secs(7));
        assert!(parse_duration("10h", 1).is_err());
        assert!(parse_duration("abc", 1).is_err());
    }

    #[test]
    fn provider_variants_parse() {
        let base = "\n[function f]\napp = random-number\n\n[workload]\npattern = serial\n";
        for (text, expected) in [
            ("provider = hotc", ProviderSpec::HotC),
            ("provider = hotc:fuzzy", ProviderSpec::HotCFuzzy),
            ("provider = cold-start", ProviderSpec::ColdStart),
            (
                "provider = fixed-keepalive:15m",
                ProviderSpec::FixedKeepAlive(SimDuration::from_mins(15)),
            ),
            (
                "provider = periodic-warmup:5m",
                ProviderSpec::PeriodicWarmup(SimDuration::from_mins(5)),
            ),
        ] {
            let s = Scenario::parse(&format!("{text}{base}")).unwrap();
            assert_eq!(s.provider, expected, "{text}");
        }
    }

    #[test]
    fn env_keys_collected() {
        let text = "\
[function a]
app = qr-code
env.TENANT = 7
env.MODE = fast

[workload]
pattern = serial
";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.functions[0].env.get("TENANT").unwrap(), "7");
        assert_eq!(s.functions[0].env.get("MODE").unwrap(), "fast");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "hardware = quantum\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("quantum"));

        let text = "\n\nprovider = blockchain\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn missing_sections_rejected() {
        let e = Scenario::parse("seed = 1\n").unwrap_err();
        assert!(e.message.contains("no functions"));

        let e = Scenario::parse("[function f]\napp = qr-code\n").unwrap_err();
        assert!(e.message.contains("no [workload]"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# leading comment
seed = 9   # trailing comment

[function f]    # section comment
app = random-number

[workload]
pattern = serial
count = 3
";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.seed, 9);
        assert!(matches!(s.workload, WorkloadSpec::Serial { count: 3, .. }));
    }

    #[test]
    fn unknown_keys_rejected() {
        let text = "\
[function f]
app = qr-code
colour = blue

[workload]
pattern = serial
";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("colour"));
    }

    #[test]
    fn duplicate_global_key_rejected() {
        let text =
            "seed = 1\nseed = 2\n\n[function f]\napp = qr-code\n\n[workload]\npattern = serial\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate key 'seed'"), "{e}");
        assert!(e.message.contains("line 1"), "{e}");
    }

    #[test]
    fn duplicate_function_key_rejected() {
        let text = "[function f]\napp = qr-code\napp = cassandra\n\n[workload]\npattern = serial\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate key 'app'"), "{e}");

        // env.* keys are tracked too.
        let text =
            "[function f]\napp = qr-code\nenv.T = 1\nenv.T = 2\n\n[workload]\npattern = serial\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate key 'env.T'"), "{e}");

        // …but the same key in *different* sections is fine.
        let text = "[function a]\napp = qr-code\n\n[function b]\napp = cassandra\n\n[workload]\npattern = serial\n";
        assert!(Scenario::parse(text).is_ok());
    }

    #[test]
    fn duplicate_workload_key_rejected() {
        let text =
            "[function f]\napp = qr-code\n\n[workload]\npattern = serial\ncount = 5\ncount = 9\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("duplicate key 'count'"), "{e}");
        assert!(e.message.contains("line 6"), "{e}");
    }

    #[test]
    fn duplicate_function_name_rejected() {
        let text = "[function f]\napp = qr-code\n\n[function f]\napp = cassandra\n\n[workload]\npattern = serial\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate function 'f'"), "{e}");
    }

    #[test]
    fn unknown_workload_key_rejected_per_pattern() {
        // 'rate' belongs to poisson, not serial — previously silently ignored.
        let text = "[function f]\napp = qr-code\n\n[workload]\npattern = serial\nrate = 5\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 6);
        assert!(
            e.message
                .contains("unknown workload key 'rate' for pattern 'serial'"),
            "{e}"
        );

        // A typo'd key name fails the same way.
        let text = "[function f]\napp = qr-code\n\n[workload]\npattern = burst\nburst_rounds = 4\n";
        let e = Scenario::parse(text).unwrap_err();
        assert!(e.message.contains("burst_rounds"), "{e}");
    }

    #[test]
    fn replicas_parse_and_validate() {
        let text = "[function f]\napp = qr-code\nreplicas = 64\n\n[workload]\npattern = serial\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.functions[0].replicas, 64);

        let text = "[function f]\napp = qr-code\nreplicas = 0\n\n[workload]\npattern = serial\n";
        let e = Scenario::parse(text).unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
    }

    #[test]
    fn synth_family_patterns_parse() {
        let base = "[function f]\napp = random-number\n\n[workload]\n";

        let s = Scenario::parse(&format!(
            "{base}pattern = synth\nrequests = 1000\nkeys = 50\nduration = 60m\nshape = flat\n"
        ))
        .unwrap();
        assert_eq!(
            s.workload,
            WorkloadSpec::Synth {
                requests: 1000,
                keys: 50,
                duration: SimDuration::from_mins(60),
                zipf: 1.1,
                peak: 1.0,
            }
        );

        let s = Scenario::parse(&format!(
            "{base}pattern = flash-crowd\nat = 0.25\nmagnitude = 6\n"
        ))
        .unwrap();
        assert!(matches!(
            s.workload,
            WorkloadSpec::FlashCrowd { at, magnitude, .. } if at == 0.25 && magnitude == 6.0
        ));

        let s = Scenario::parse(&format!(
            "{base}pattern = deploy-waves\nwaves = 6\nwindow = 32\n"
        ))
        .unwrap();
        assert!(matches!(
            s.workload,
            WorkloadSpec::DeployWaves {
                waves: 6,
                window: 32,
                ..
            }
        ));

        let s = Scenario::parse(&format!("{base}pattern = multi-tenant\ntenants = 3\n")).unwrap();
        assert!(matches!(
            s.workload,
            WorkloadSpec::MultiTenant { tenants: 3, .. }
        ));

        let s = Scenario::parse(&format!(
            "{base}pattern = azure-csv\npath = /tmp/x.csv\ninterval = 5m\n"
        ))
        .unwrap();
        assert_eq!(
            s.workload,
            WorkloadSpec::AzureCsv {
                path: "/tmp/x.csv".to_string(),
                interval: SimDuration::from_mins(5),
            }
        );

        let s = Scenario::parse(&format!("{base}pattern = opendc\npath = /tmp/x.trace\n")).unwrap();
        assert_eq!(
            s.workload,
            WorkloadSpec::OpenDc {
                path: "/tmp/x.trace".to_string(),
            }
        );

        // File patterns require a path.
        let e = Scenario::parse(&format!("{base}pattern = opendc\n")).unwrap_err();
        assert!(e.message.contains("needs a 'path'"), "{e}");

        // Bad synth shape names are rejected with the line number.
        let e = Scenario::parse(&format!("{base}pattern = synth\nshape = square\n")).unwrap_err();
        assert!(e.message.contains("unknown synth shape"), "{e}");
    }

    #[test]
    fn burst_at_list_parses() {
        let text = "\
[function f]
app = random-number

[workload]
pattern = burst
burst_at = 2, 5, 9
rounds = 12
";
        let s = Scenario::parse(text).unwrap();
        match s.workload {
            WorkloadSpec::Burst { burst_at, .. } => assert_eq!(burst_at, vec![2, 5, 9]),
            other => panic!("wrong workload {other:?}"),
        }
    }
}
