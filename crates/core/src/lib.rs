#![warn(missing_docs)]

//! # HotC — efficient and adaptive container runtime reusing
//!
//! This crate is the paper's primary contribution: a middleware between
//! clients and the serverless backend that mitigates cold starts by keeping
//! a pool of *live* container runtimes and reusing them for requests whose
//! parameter configuration matches (§IV).
//!
//! Components, mapped to the paper:
//!
//! * [`key`] — **Parameter analysis**: the user command/configuration is
//!   resolved into a canonical, formatted [`key::RuntimeKey`]; "containers
//!   with identical parameter configurations are the same type of runtime".
//!   The future-work fuzzy matching (reuse on a parameter subset, applying
//!   the differences at acquire time) ships as [`key::KeyPolicy::Fuzzy`].
//! * [`pool`] — **Container runtime pool** (Fig. 7 + Algorithms 1–2): a
//!   key-value store from runtime key to available/in-use container lists,
//!   with the `num_avail` bookkeeping, used-container cleanup (wipe + fresh
//!   volume), and oldest-first forced termination.
//! * [`controller`] — **Adaptive live container management** (Algorithm 3):
//!   per-key demand history at a fixed control interval, predicted with the
//!   combined exponential-smoothing + Markov model, pre-warming and retiring
//!   pool containers to match.
//! * [`limits`] — the resource guardrails of §IV-B: at most 500 live
//!   containers and a host memory-pressure threshold of 80 %
//!   (`used_mem + used_swap`), enforced by evicting the oldest live
//!   container.
//! * [`middleware`] — [`middleware::HotC`], tying the above together behind
//!   the [`faas::RuntimeProvider`] trait so the unmodified gateway can run
//!   with HotC ("does not involve disruptive changes to the existing
//!   architecture").
//! * [`shard`] — the sharded concurrent pool ([`shard::ShardedPool`]):
//!   runtime keys are hashed onto N independently locked shards so warm
//!   paths for different runtime types never contend, and container
//!   creation happens outside every shard lock.
//! * [`concurrent`] — thread-safe frontends for the parallel-request
//!   experiments and contention benchmarks: the global-lock
//!   [`concurrent::ConcurrentGateway`] baseline and the scalable
//!   [`concurrent::ShardedGateway`].
//!
//! ## Quickstart
//!
//! ```
//! use containersim::{ContainerEngine, HardwareProfile};
//! use faas::{AppProfile, Gateway};
//! use hotc::HotC;
//! use simclock::SimTime;
//!
//! let engine = ContainerEngine::with_local_images(HardwareProfile::server());
//! let mut gateway = Gateway::new(engine, HotC::with_defaults());
//! gateway.register_app(AppProfile::qr_code(containersim::LanguageRuntime::Python));
//!
//! let cold = gateway.handle("qr-code", SimTime::ZERO).unwrap();
//! let warm = gateway.handle("qr-code", SimTime::from_secs(5)).unwrap();
//! assert!(cold.cold && !warm.cold);
//! assert!(warm.total() < cold.total() / 5);
//! ```

pub mod concurrent;
pub mod controller;
pub mod key;
pub mod limits;
pub mod middleware;
pub mod pool;
pub mod shard;

pub use concurrent::{ConcurrentGateway, FunctionHandle, ShardedGateway};
pub use controller::{AdaptiveController, ControllerConfig};
pub use key::{KeyId, KeyInterner, KeyPolicy, RuntimeKey};
pub use limits::PoolLimits;
pub use middleware::{HotC, HotCConfig};
pub use pool::ContainerPool;
pub use shard::{EngineRef, ExclusiveEngine, ShardSnapshot, ShardedPool, DEFAULT_SHARDS};
