//! Replays a day of YouTube-shaped campus traffic (the paper's Fig. 11
//! trace) through the serverless gateway and compares runtime managers.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use hotc_bench::run_workload;
use hotc_repro::prelude::*;
use workloads::youtube::{expand_to_arrivals, youtube_trace, YoutubeTraceParams};

fn main() {
    // A 288-index day (5-minute indices), rates scaled down 10× to keep the
    // replay quick.
    let params = YoutubeTraceParams {
        length: 288,
        seed: 99,
        ..Default::default()
    };
    let rates: Vec<f64> = youtube_trace(&params)
        .into_iter()
        .map(|r| r / 10.0)
        .collect();
    let workload = expand_to_arrivals(&rates, SimDuration::from_secs(300), 0, 99);
    println!(
        "replaying {} requests across a simulated day\n",
        workload.len()
    );

    let mut table = Table::new(
        "day-long trace replay",
        &[
            "backend",
            "mean_ms",
            "p99_ms",
            "cold_fraction",
            "live_at_end",
        ],
    );
    for backend in ["cold-start", "fixed-keepalive", "hotc"] {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let row = match backend {
            "cold-start" => replay(
                Gateway::new(engine, faas::ColdStartAlways::new()),
                &workload,
            ),
            "fixed-keepalive" => replay(
                Gateway::new(engine, FixedKeepAlive::aws_default()),
                &workload,
            ),
            _ => replay(Gateway::new(engine, HotC::with_defaults()), &workload),
        };
        table.row(&[
            backend.to_string(),
            format!("{:.1}", row.0.mean().as_millis_f64()),
            format!("{:.1}", row.0.percentile(0.99).as_millis_f64()),
            format!("{:.3}", row.1),
            row.2.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(trace features: burst 20→300 at T710, decline T800–T1200, rise T1200–T1400)");
}

fn replay<P: RuntimeProvider + 'static>(
    mut gateway: Gateway<P>,
    workload: &[workloads::Arrival],
) -> (LatencyRecorder, f64, usize) {
    gateway.register_app(AppProfile::random_number());
    let out = run_workload(
        gateway,
        workload,
        |_| "random-number".to_string(),
        SimDuration::from_secs(30),
    );
    let mut recorder = LatencyRecorder::new();
    for t in &out.traces {
        recorder.record(t.total());
    }
    (
        recorder,
        out.cold_fraction(),
        out.gateway.engine().live_count(),
    )
}
