//! Multi-threaded property tests for the sharded pool.
//!
//! Random interleavings of acquire / release / prewarm / retire / evict from
//! several real threads, checking the two invariants that the sharded
//! rewrite must preserve under contention:
//!
//! 1. **Exclusive ownership** — no container is ever handed to two requests
//!    at once. Every successful acquire inserts the id into a shared owned
//!    set and the insert must find it absent.
//! 2. **Bookkeeping agreement** — at quiescence the pool's view
//!    (`total_live`) matches the engine's (`live_count`), and nothing is
//!    left marked in-use.

use containersim::{ContainerConfig, ContainerEngine, ContainerId, HardwareProfile, ImageId};
use hotc::{KeyPolicy, ShardedPool};
use simclock::SimTime;
use std::collections::HashSet;
use std::sync::Arc;
use stdshim::sync::Mutex;
use testkit::Gen;

fn config_for_key(k: usize) -> ContainerConfig {
    let mut c = ContainerConfig::bridge(ImageId::parse("alpine:3.12"));
    c.exec.env.insert("K".into(), k.to_string());
    c
}

/// One worker's slice of the interleaving: random operations against the
/// shared pool, tracking which containers this thread currently owns.
fn worker(
    pool: &ShardedPool,
    engine: &Mutex<ContainerEngine>,
    owned: &Mutex<HashSet<ContainerId>>,
    seed: u64,
    ops: usize,
    keys: usize,
) {
    let mut g = Gen::from_seed(seed);
    let mut held: Vec<ContainerId> = Vec::new();
    for op in 0..ops {
        let now = SimTime::from_millis(op as u64);
        match g.u8_in(0..10) {
            // Acquire (weighted heaviest): must get a container nobody owns.
            0..=4 => {
                let cfg = config_for_key(g.usize_in(0..keys));
                let acq = pool.acquire(engine, &cfg, now).expect("acquire");
                let fresh = owned.lock().insert(acq.container);
                assert!(fresh, "container {:?} handed out twice", acq.container);
                held.push(acq.container);
            }
            // Release a random held container. The owned-set entry goes away
            // BEFORE pool.release: once release runs, another thread may
            // legitimately re-acquire the id.
            5..=7 => {
                if !held.is_empty() {
                    let c = held.swap_remove(g.usize_in(0..held.len()));
                    assert!(owned.lock().remove(&c), "released a container not owned");
                    pool.release(engine, c, now).expect("release");
                }
            }
            8 => {
                let cfg = config_for_key(g.usize_in(0..keys));
                pool.prewarm(engine, &cfg, now).expect("prewarm");
            }
            _ => {
                // Eviction/retire only touch *available* containers, so they
                // can never invalidate anything in a `held` list.
                pool.evict_oldest(engine, now).expect("evict");
            }
        }
    }
    // Quiesce: hand everything back.
    for c in held {
        assert!(owned.lock().remove(&c));
        pool.release(engine, c, SimTime::from_secs(3600))
            .expect("final release");
    }
}

#[test]
fn random_interleavings_preserve_ownership_and_bookkeeping() {
    // Each case is a fresh pool hammered by 4 OS threads with per-thread
    // deterministic op streams; the interleaving itself is the only
    // nondeterminism, which is exactly what the invariants must survive.
    testkit::check(12, |g| {
        let threads = 4usize;
        let ops = g.usize_in(40..120);
        let keys = g.usize_in(1..6);
        let shards = *g.pick(&[1usize, 2, 8]);
        let policy = *g.pick(&[KeyPolicy::Exact, KeyPolicy::Fuzzy]);
        let seeds: Vec<u64> = (0..threads).map(|_| g.next_u64()).collect();

        let pool = ShardedPool::with_shards(policy, shards);
        let engine = Mutex::new(ContainerEngine::with_local_images(HardwareProfile::server()));
        let owned = Arc::new(Mutex::new(HashSet::new()));

        std::thread::scope(|s| {
            for seed in seeds {
                let pool = &pool;
                let engine = &engine;
                let owned = Arc::clone(&owned);
                s.spawn(move || worker(pool, engine, &owned, seed, ops, keys));
            }
        });

        // All threads joined and released: nobody owns anything, the pool
        // and engine agree on the live population, and every key's in-use
        // list is empty.
        assert!(owned.lock().is_empty());
        let live = engine.lock().live_count();
        assert_eq!(pool.total_live(), live);
        assert_eq!(pool.total_available(), live);
        for key in pool.keys() {
            assert_eq!(pool.num_in_use(&key), 0);
        }
    });
}

#[test]
fn one_key_hammered_from_32_threads_survives_controller_ticks() {
    // The lock-free warm path's worst case: every thread wants the SAME
    // key, so every warm acquire and release races on one `SlotBitmap`
    // while a controller thread concurrently takes dirty snapshots (which
    // swap the demand watermark and can GC the key) and evicts idle
    // containers (which claims available bits out from under the warm
    // path). Exclusive ownership must hold bit-for-bit, and at quiescence
    // the per-shard live counters must reconcile with the engine.
    use std::sync::atomic::{AtomicBool, Ordering};

    let threads = 32usize;
    let ops = 200usize;
    let pool = ShardedPool::with_shards(KeyPolicy::Exact, 8);
    let engine = Mutex::new(ContainerEngine::with_local_images(HardwareProfile::server()));
    let owned = Mutex::new(HashSet::new());
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let controller = {
            let (pool, engine, stop) = (&pool, &engine, &stop);
            s.spawn(move || {
                let mut tick = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for shard in 0..pool.num_shards() {
                        pool.take_shard_snapshot_dirty(shard);
                    }
                    pool.evict_oldest(engine, SimTime::from_millis(tick))
                        .expect("evict");
                    tick += 1;
                    std::thread::yield_now();
                }
            })
        };

        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let (pool, engine, owned) = (&pool, &engine, &owned);
                s.spawn(move || {
                    let mut g = Gen::from_seed(0xC0FFEE ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    let mut held: Vec<ContainerId> = Vec::new();
                    for op in 0..ops {
                        let now = SimTime::from_millis(op as u64);
                        // Hold up to 3 containers so warm hits, cold starts,
                        // and releases all stay in the mix.
                        if held.len() < 3 && g.u8_in(0..3) != 0 {
                            let acq = pool
                                .acquire(engine, &config_for_key(0), now)
                                .expect("acquire");
                            let fresh = owned.lock().insert(acq.container);
                            assert!(fresh, "container {:?} handed out twice", acq.container);
                            held.push(acq.container);
                        } else if !held.is_empty() {
                            let c = held.swap_remove(g.usize_in(0..held.len()));
                            assert!(owned.lock().remove(&c), "released unowned container");
                            pool.release(engine, c, now).expect("release");
                        }
                    }
                    for c in held {
                        assert!(owned.lock().remove(&c));
                        pool.release(engine, c, SimTime::from_secs(3600))
                            .expect("final release");
                    }
                })
            })
            .collect();

        for w in workers {
            w.join().expect("worker panicked");
        }
        stop.store(true, Ordering::Relaxed);
        controller.join().expect("controller panicked");
    });

    // Quiescence: nothing owned, nothing in use, and the pool's shard-level
    // bookkeeping agrees with the engine's ground truth.
    assert!(owned.lock().is_empty());
    let live = engine.lock().live_count();
    assert_eq!(pool.total_live(), live, "pool live diverged from engine");
    assert_eq!(pool.total_available(), live, "in-use containers leaked");
    let (avail_sum, in_use_sum) = pool
        .shard_sizes()
        .into_iter()
        .fold((0, 0), |(a, u), (sa, su)| (a + sa, u + su));
    assert_eq!(in_use_sum, 0, "a shard still reports in-use containers");
    assert_eq!(avail_sum, live, "shard avail counters diverged from engine");
    for key in pool.keys() {
        assert_eq!(pool.num_in_use(&key), 0);
    }
}

#[test]
fn interning_is_stable_under_concurrency() {
    // 8 threads race to intern the same 6 configurations (plus their own
    // re-interns, warm acquires, and releases). Every thread must observe
    // the same config → KeyId mapping, distinct configs must get distinct
    // ids, and the ids must agree with the canonical-key lookup — the
    // double-checked insert in the interner must never hand out two ids for
    // one key, or two shards would track the same runtime type.
    for policy in [KeyPolicy::Exact, KeyPolicy::Fuzzy] {
        let keys = 6usize;
        let pool = ShardedPool::with_shards(policy, 8);
        let engine = Mutex::new(ContainerEngine::with_local_images(HardwareProfile::server()));
        let maps: Mutex<Vec<Vec<hotc::KeyId>>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = &pool;
                let engine = &engine;
                let maps = &maps;
                s.spawn(move || {
                    let mut seen = Vec::with_capacity(keys);
                    for k in 0..keys {
                        // Stagger the first-touch order per thread so every
                        // key has several racing first interns.
                        let k = (k + t) % keys;
                        let cfg = config_for_key(k);
                        let id = pool.intern_config(&cfg);
                        let acq = pool
                            .acquire(engine, &cfg, SimTime::from_millis(t as u64))
                            .expect("acquire");
                        pool.release(engine, acq.container, SimTime::from_secs(1))
                            .expect("release");
                        assert_eq!(id, pool.intern_config(&cfg), "re-intern moved the id");
                        assert_eq!(Some(id), pool.id_of(&pool.key_of(&cfg)));
                        seen.push((k, id));
                    }
                    seen.sort_unstable_by_key(|&(k, _)| k);
                    maps.lock()
                        .push(seen.into_iter().map(|(_, id)| id).collect());
                });
            }
        });
        // Fuzzy keys ignore env differences, so the distinct-id count is
        // the distinct-*key* count (1 under Fuzzy, `keys` under Exact).
        let distinct_keys: HashSet<_> =
            (0..keys).map(|k| pool.key_of(&config_for_key(k))).collect();
        let maps = maps.into_inner();
        for map in &maps {
            assert_eq!(map, &maps[0], "threads disagree on config → id");
            let mut dedup = map.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), distinct_keys.len(), "one id per distinct key");
        }
    }
}

#[test]
fn cold_starts_on_distinct_keys_make_distinct_containers() {
    // 8 threads, 8 disjoint keys, no warm pool: every acquire is a cold
    // start through a different shard, and all 8 ids must be distinct.
    let pool = ShardedPool::with_shards(KeyPolicy::Exact, 8);
    let engine = Mutex::new(ContainerEngine::with_local_images(HardwareProfile::server()));
    let ids = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for k in 0..8 {
            let pool = &pool;
            let engine = &engine;
            let ids = &ids;
            s.spawn(move || {
                let acq = pool
                    .acquire(engine, &config_for_key(k), SimTime::ZERO)
                    .expect("acquire");
                ids.lock().push(acq.container);
            });
        }
    });
    let mut ids = ids.into_inner();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 8);
    assert_eq!(pool.total_live(), 8);
    assert_eq!(engine.lock().live_count(), 8);
}
