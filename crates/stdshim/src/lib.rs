#![warn(missing_docs)]

//! Zero-dependency standard-library shims for the HotC workspace.
//!
//! The workspace builds offline with no registry crates; this crate hosts
//! the small pieces that third-party crates used to provide:
//!
//! * [`sync`] — non-poisoning `Mutex`/`RwLock` wrappers over `std::sync`
//!   with parking_lot-style ergonomics (`.lock()` returns the guard), a
//!   debug-build lock-order sanitizer (class labels, ABBA cycle detection,
//!   re-entry detection, [`sync::request_path_scope`]), and the lock-free
//!   slot primitives the warm path is built on ([`sync::SlotBitmap`],
//!   [`sync::LazySlotTable`]),
//! * [`json`] — a JSON tree ([`json::JsonValue`]) with a hand-written
//!   serializer and parser, plus the [`json::ToJson`] trait that result
//!   structs implement instead of deriving `serde::Serialize`, and
//! * [`hash`] — an FxHash-style fast hasher ([`hash::FastMap`]) for maps
//!   keyed by internal integers on the request path,
//! * [`atomic`] — the protocol-atomic facade: zero-cost `std::sync::atomic`
//!   re-exports in normal builds, instrumented model types under
//!   `--cfg hotc_model`, and
//! * [`model`] — a loom-style bounded model checker (controlled scheduler,
//!   weak-memory store model, DFS over interleavings) that the `hotc-model`
//!   crate runs against the lock-free slot protocol.
//!
//! Everything here is std-only and auditable in one sitting; the hermeticity
//! guard test (`tests/hermetic.rs` at the workspace root) enforces that it
//! stays that way.

pub mod atomic;
pub mod hash;
pub mod json;
pub mod model;
pub mod sync;
mod sync_slots;

pub use hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use json::{JsonValue, ToJson};
pub use sync::{request_path_scope, LazySlotTable, Mutex, RwLock, SlotBitmap};
