//! lint-fixture-path: crates/core/src/fixture.rs
use std::sync::atomic::{AtomicU64, Ordering};
fn f(x: &AtomicU64) {
    x.store(1, Ordering::Relaxed);
    let _old = x.fetch_or(2, Ordering::Relaxed);
    let _won = x
        .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok();
}
