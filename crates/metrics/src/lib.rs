#![warn(missing_docs)]

//! Measurement utilities for the HotC reproduction: latency recording,
//! streaming statistics, empirical CDFs, resource time series, and the text
//! tables/plots the figure harness prints.
//!
//! Everything here is deterministic and allocation-conscious: recorders are
//! used on the hot path of the contention benchmarks.

pub mod cdf;
pub mod histogram;
pub mod latency;
pub mod registry;
pub mod snapshot;
pub mod stage;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use cdf::Cdf;
pub use histogram::LatencyHistogram;
pub use latency::LatencyRecorder;
pub use registry::{Counter, Gauge, MetricsRegistry, SharedHistogram, StageSet};
pub use snapshot::{HistogramSummary, MetricsSnapshot};
pub use stage::{Stage, StageSample, N_STAGES};
pub use stats::StreamingStats;
pub use table::{render_series, Table};
pub use timeseries::TimeSeries;
