//! Markov chain over value regions (paper Eq. 2).
//!
//! The observed range is partitioned into `n` contiguous region states
//! `R_i = [R_{i1}, R_{i2})`. From the historical state sequence the k-step
//! transition counts `T_ij(k)` are accumulated and normalized into the
//! transition probability matrix `P_ij(k) = T_ij(k) / T_i`. Given the current
//! state, the predicted next value is the midpoint `(R_{i1}+R_{i2})/2` of the
//! most probable next region (§IV-C-3).

use crate::Predictor;

use stdshim::{JsonValue, ToJson};
/// An equal-width partition of `[lo, hi]` into `n` regions.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPartition {
    lo: f64,
    hi: f64,
    n: usize,
}

impl RegionPartition {
    /// Builds a partition over `[lo, hi]` with `n ≥ 1` regions. Degenerate
    /// ranges (`hi <= lo`) are widened to a unit interval around `lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1, "need at least one region");
        let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1.0) };
        RegionPartition { lo, hi, n }
    }

    /// Builds a partition spanning the min/max of a history slice.
    pub fn from_history(history: &[f64], n: usize) -> Self {
        let lo = history.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = history.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if history.is_empty() || !lo.is_finite() || !hi.is_finite() {
            RegionPartition::new(0.0, 1.0, n)
        } else {
            RegionPartition::new(lo, hi, n)
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is a single-region (trivial) partition.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps a value to its region index (clamped at the edges).
    pub fn state_of(&self, value: f64) -> usize {
        let width = (self.hi - self.lo) / self.n as f64;
        let idx = ((value - self.lo) / width).floor();
        (idx.max(0.0) as usize).min(self.n - 1)
    }

    /// The `(R_{i1}, R_{i2})` bounds of region `i`.
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.n as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// The midpoint `(R_{i1}+R_{i2})/2` of region `i` — the predicted value
    /// when the chain lands in that region.
    pub fn midpoint(&self, i: usize) -> f64 {
        let (a, b) = self.bounds(i);
        (a + b) / 2.0
    }
}

/// The Markov chain predictor of Eq. 2.
///
/// Observes a value series, maintains the 1-step transition counts over a
/// region partition, and predicts the midpoint of the most probable next
/// region. K-step matrices are available via [`MarkovChain::k_step_matrix`].
#[derive(Debug, Clone)]
pub struct MarkovChain {
    partition: RegionPartition,
    /// Row-major `n×n` matrix: `counts[i*n + j]` = observed 1-step
    /// transitions i → j. Flat so a chain costs one allocation — per-key
    /// controllers build (and re-fit) thousands of these.
    counts: Vec<u64>,
    last_state: Option<usize>,
    observations: usize,
    /// Bumped on every count mutation; the k-step cache keys off it.
    version: u64,
    /// Memoized `(k, version) → P^k`: a tick can ask for the same power
    /// repeatedly while the counts are unchanged.
    kstep_cache: std::cell::RefCell<Option<KStepCache>>,
}

#[derive(Debug, Clone)]
struct KStepCache {
    k: u32,
    version: u64,
    matrix: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Creates a chain over a fixed partition.
    pub fn new(partition: RegionPartition) -> Self {
        let n = partition.len();
        MarkovChain {
            partition,
            counts: vec![0; n * n],
            last_state: None,
            observations: 0,
            version: 0,
            kstep_cache: std::cell::RefCell::new(None),
        }
    }

    /// Creates a chain whose partition spans a training history, then
    /// observes that history.
    pub fn fit(history: &[f64], regions: usize) -> Self {
        let mut chain = MarkovChain::new(RegionPartition::from_history(history, regions));
        for &x in history {
            chain.observe_value(x);
        }
        chain
    }

    /// Re-fits this chain in place over a history given as two slices (a
    /// ring buffer's halves), reusing the counts allocation. Equivalent to
    /// replacing the chain with `MarkovChain::fit` over the concatenation,
    /// minus the allocations — the sliding-window predictor re-partitions
    /// this way every time its value range drifts.
    pub fn refit(&mut self, head: &[f64], tail: &[f64], regions: usize) {
        let values = || head.iter().chain(tail).copied();
        let lo = values().fold(f64::INFINITY, f64::min);
        let hi = values().fold(f64::NEG_INFINITY, f64::max);
        self.partition = if !lo.is_finite() || !hi.is_finite() {
            RegionPartition::new(0.0, 1.0, regions)
        } else {
            RegionPartition::new(lo, hi, regions)
        };
        self.counts.clear();
        self.counts.resize(regions * regions, 0);
        self.last_state = None;
        self.observations = 0;
        self.version = self.version.wrapping_add(1);
        for x in values() {
            self.observe_value(x);
        }
    }

    fn observe_value(&mut self, value: f64) {
        let state = self.partition.state_of(value);
        if let Some(prev) = self.last_state {
            self.counts[prev * self.partition.len() + state] += 1;
        }
        self.last_state = Some(state);
        self.observations += 1;
        self.version = self.version.wrapping_add(1);
    }

    /// Retracts the oldest windowed observation: its outgoing transition
    /// `from → to` and its contribution to the observation count. Together
    /// with [`Predictor::observe`] this keeps the counts equal to a batch
    /// [`MarkovChain::fit`] over a sliding window, without refitting —
    /// evicting the window head removes exactly its one outgoing edge.
    pub fn forget_oldest(&mut self, from: usize, to: usize) {
        let cell = &mut self.counts[from * self.partition.len() + to];
        debug_assert!(
            *cell > 0,
            "retracting a transition {from}→{to} that was never observed"
        );
        *cell = cell.saturating_sub(1);
        self.observations = self.observations.saturating_sub(1);
        self.version = self.version.wrapping_add(1);
    }

    /// The raw 1-step transition counts `T_ij`, row-major (`n×n` flat).
    pub fn transition_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Row `i` of the raw transition counts.
    fn counts_row(&self, i: usize) -> &[u64] {
        let n = self.partition.len();
        &self.counts[i * n..(i + 1) * n]
    }

    /// The region partition.
    pub fn partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// The current state (region of the latest observation).
    pub fn current_state(&self) -> Option<usize> {
        self.last_state
    }

    /// Row `i` of the 1-step transition matrix `P_ij = T_ij / T_i`. Rows with
    /// no outgoing observations fall back to "stay in place" (identity row),
    /// which is the least-surprising prior for a demand series.
    pub fn transition_row(&self, i: usize) -> Vec<f64> {
        let row = self.counts_row(i);
        let total: u64 = row.iter().sum();
        if total == 0 {
            let mut out = vec![0.0; row.len()];
            out[i] = 1.0;
            return out;
        }
        row.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// The full 1-step transition matrix.
    pub fn transition_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.partition.len())
            .map(|i| self.transition_row(i))
            .collect()
    }

    /// The k-step transition matrix `P(k) = P^k` (Eq. 2's matrix power).
    ///
    /// The result is memoized per `(k, counts-version)`: repeated calls
    /// between count mutations return a clone of the cached power instead of
    /// redoing the matrix multiplications.
    pub fn k_step_matrix(&self, k: u32) -> Vec<Vec<f64>> {
        if let Some(cache) = self.kstep_cache.borrow().as_ref() {
            if cache.k == k && cache.version == self.version {
                return cache.matrix.clone();
            }
        }
        let n = self.partition.len();
        let mut result: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                row
            })
            .collect();
        let p = self.transition_matrix();
        for _ in 0..k {
            result = mat_mul(&result, &p);
        }
        *self.kstep_cache.borrow_mut() = Some(KStepCache {
            k,
            version: self.version,
            matrix: result.clone(),
        });
        result
    }

    /// Most probable next state from the current one (ties break toward the
    /// lower region, matching a conservative resource allocation). Works on
    /// the raw counts directly — no row normalization, no allocation.
    pub fn predict_state(&self) -> Option<usize> {
        let cur = self.last_state?;
        let row = self.counts_row(cur);
        let mut best = cur; // identity fallback for rows never exited
        let mut best_c = 0u64;
        for (j, &c) in row.iter().enumerate() {
            if c > best_c {
                best = j;
                best_c = c;
            }
        }
        Some(best)
    }

    /// Expected next value under the transition distribution (smoother than
    /// the argmax midpoint; used by the combined predictor).
    pub fn expected_next(&self) -> Option<f64> {
        let cur = self.last_state?;
        let row = self.transition_row(cur);
        Some(
            row.iter()
                .enumerate()
                .map(|(j, &p)| p * self.partition.midpoint(j))
                .sum(),
        )
    }

    /// Whether the chain has ever been observed *leaving* `state` (i.e. the
    /// transition row has real evidence rather than the identity fallback).
    pub fn has_outgoing(&self, state: usize) -> bool {
        self.counts_row(state).iter().sum::<u64>() > 0
    }

    /// Like [`Self::expected_next`], but returns `None` when the current
    /// state has never been *exited* — i.e. there is no observed evidence of
    /// where the chain goes from here. The combined predictor treats that as
    /// "no correction" instead of assuming the state persists, which avoids
    /// overshooting on first-time regime shifts.
    pub fn expected_next_observed(&self) -> Option<f64> {
        let cur = self.last_state?;
        if !self.has_outgoing(cur) {
            return None;
        }
        self.expected_next()
    }
}

impl Predictor for MarkovChain {
    fn observe(&mut self, value: f64) {
        self.observe_value(value);
    }

    fn predict(&self) -> f64 {
        match self.predict_state() {
            Some(s) => self.partition.midpoint(s),
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "markov"
    }

    fn observations(&self) -> usize {
        self.observations
    }
}

fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

impl ToJson for RegionPartition {
    fn to_json(&self) -> JsonValue {
        let (lo, _) = self.bounds(0);
        let (_, hi) = self.bounds(self.len() - 1);
        JsonValue::object([
            ("lo", lo.to_json()),
            ("hi", hi.to_json()),
            ("regions", self.len().to_json()),
        ])
    }
}

impl ToJson for MarkovChain {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("partition", self.partition().to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_maps_values_to_regions() {
        let p = RegionPartition::new(0.0, 10.0, 5);
        assert_eq!(p.state_of(-1.0), 0); // clamped
        assert_eq!(p.state_of(0.0), 0);
        assert_eq!(p.state_of(3.9), 1);
        assert_eq!(p.state_of(9.99), 4);
        assert_eq!(p.state_of(42.0), 4); // clamped
        assert_eq!(p.midpoint(0), 1.0);
        assert_eq!(p.midpoint(4), 9.0);
    }

    #[test]
    fn degenerate_range_widened() {
        let p = RegionPartition::new(5.0, 5.0, 4);
        assert_eq!(p.state_of(5.0), 0);
        assert!(p.midpoint(0).is_finite());
    }

    #[test]
    fn alternating_series_learned_exactly() {
        // 1, 9, 1, 9, ... with two regions: perfect alternation.
        let series: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 9.0 })
            .collect();
        let chain = MarkovChain::fit(&series, 2);
        // Last value was 9 (state 1); next must be state 0.
        assert_eq!(chain.current_state(), Some(1));
        assert_eq!(chain.predict_state(), Some(0));
        let pred = chain.predict();
        assert!(pred < 5.0, "pred={pred}");
    }

    #[test]
    fn rows_are_stochastic() {
        let series: Vec<f64> = (0..100).map(|i| ((i * 7919) % 23) as f64).collect();
        let chain = MarkovChain::fit(&series, 6);
        for i in 0..6 {
            let sum: f64 = chain.transition_row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn unvisited_row_is_identity() {
        let chain = MarkovChain::new(RegionPartition::new(0.0, 10.0, 3));
        let row = chain.transition_row(2);
        assert_eq!(row, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn k_step_matrix_power() {
        let series: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 9.0 })
            .collect();
        let chain = MarkovChain::fit(&series, 2);
        // Perfect alternation: P² = identity.
        let p2 = chain.k_step_matrix(2);
        assert!((p2[0][0] - 1.0).abs() < 1e-9);
        assert!((p2[1][1] - 1.0).abs() < 1e-9);
        // P⁰ = identity by definition.
        let p0 = chain.k_step_matrix(0);
        assert!((p0[0][0] - 1.0).abs() < 1e-12 && p0[0][1].abs() < 1e-12);
    }

    #[test]
    fn k_step_cache_invalidates_on_count_changes() {
        let series: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 9.0 })
            .collect();
        let mut chain = MarkovChain::fit(&series, 2);
        let before = chain.k_step_matrix(3);
        assert_eq!(before, chain.k_step_matrix(3)); // cache hit
                                                    // Break the perfect alternation (9 → 9); the cached power must not
                                                    // survive the count change. The range is unchanged, so a fresh fit
                                                    // over the extended series is the ground truth.
        chain.observe(9.0);
        let mut extended = series.clone();
        extended.push(9.0);
        let reference = MarkovChain::fit(&extended, 2);
        assert_eq!(chain.k_step_matrix(3), reference.k_step_matrix(3));
        assert_ne!(chain.k_step_matrix(3), before);
    }

    #[test]
    fn forget_oldest_retracts_head_transition() {
        let series = [1.0, 9.0, 1.0, 9.0];
        let mut chain = MarkovChain::fit(&series, 2);
        // Evicting the head removes its outgoing 1→9 edge; the remainder
        // matches a fit over the shortened window.
        chain.forget_oldest(0, 1);
        let shorter = MarkovChain::fit(&series[1..], 2);
        assert_eq!(chain.transition_counts(), shorter.transition_counts());
        assert_eq!(chain.observations(), shorter.observations());
    }

    #[test]
    fn expected_next_is_probability_weighted() {
        // From state with deterministic self-loop, expected = midpoint.
        let series = vec![5.0; 20];
        let chain = MarkovChain::fit(&series, 4);
        let cur = chain.current_state().unwrap();
        let expected = chain.expected_next().unwrap();
        assert!((expected - chain.partition().midpoint(cur)).abs() < 1e-9);
    }

    #[test]
    fn empty_chain_predicts_zero() {
        let chain = MarkovChain::new(RegionPartition::new(0.0, 1.0, 3));
        assert_eq!(chain.predict(), 0.0);
        assert_eq!(chain.predict_state(), None);
        assert_eq!(chain.expected_next(), None);
    }

    /// Every k-step matrix row remains a probability distribution.
    #[test]
    fn prop_k_step_rows_stochastic() {
        testkit::check(64, |g| {
            let series = g.vec(2..80, |g| g.f64_in(0.0..100.0));
            let regions = g.usize_in(1..8);
            let k = g.u32_in(0..5);
            let chain = MarkovChain::fit(&series, regions);
            for row in chain.k_step_matrix(k) {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "row sums to {sum}");
                for p in row {
                    assert!((-1e-9..=1.0 + 1e-9).contains(&p));
                }
            }
        });
    }

    /// Predictions always land inside the partition's overall range.
    #[test]
    fn prop_prediction_in_range() {
        testkit::check(64, |g| {
            let series = g.vec(2..80, |g| g.f64_in(0.0..100.0));
            let regions = g.usize_in(1..8);
            let chain = MarkovChain::fit(&series, regions);
            let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let p = chain.predict();
            // Midpoints lie strictly inside [lo, hi] (or the widened unit interval).
            assert!(p >= lo - 1.0 && p <= hi + 1.0);
        });
    }
}
