//! One module per paper figure. Each `run()` returns a structured result
//! with a `render()` text form; the shape assertions live in the workspace
//! integration tests (`tests/experiments.rs`).

pub mod ablations;
pub mod cloudlet;
pub mod cluster;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod keepalive;

use containersim::{ContainerEngine, HardwareProfile};
use faas::gateway::Gateway;
use faas::{AppProfile, RuntimeProvider};

/// A gateway over a server-profile engine with pre-pulled images and the
/// given provider, with `apps` registered under their own names.
pub fn server_gateway<P: RuntimeProvider>(provider: P, apps: &[AppProfile]) -> Gateway<P> {
    gateway_on(HardwareProfile::server(), provider, apps)
}

/// Same on an arbitrary hardware profile.
pub fn gateway_on<P: RuntimeProvider>(
    hw: HardwareProfile,
    provider: P,
    apps: &[AppProfile],
) -> Gateway<P> {
    let engine = ContainerEngine::with_local_images(hw);
    let mut gw = Gateway::new(engine, provider);
    for app in apps {
        gw.register_app(app.clone());
    }
    gw
}

/// Percentage reduction of `new` relative to `baseline` (positive = faster).
pub fn reduction_pct(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (1.0 - new / baseline) * 100.0
}
