//! Prediction-error metrics used in the Fig. 10 comparisons.

/// Mean absolute error between predictions and actuals.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mae(predictions: &[f64], actuals: &[f64]) -> f64 {
    check(predictions, actuals);
    predictions
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Root mean squared error.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rmse(predictions: &[f64], actuals: &[f64]) -> f64 {
    check(predictions, actuals);
    (predictions
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predictions.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error, with denominators clamped to ≥ 1 so a
/// zero-demand interval doesn't blow the metric up (demand is a count).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mape(predictions: &[f64], actuals: &[f64]) -> f64 {
    check(predictions, actuals);
    predictions
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a).abs() / a.abs().max(1.0))
        .sum::<f64>()
        / predictions.len() as f64
}

/// The worst single-step relative error (the "29 % → 10 %" quantity of
/// Fig. 10(a) is a per-step relative error).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn max_relative_error(predictions: &[f64], actuals: &[f64]) -> f64 {
    check(predictions, actuals);
    predictions
        .iter()
        .zip(actuals)
        .map(|(p, a)| (p - a).abs() / a.abs().max(1.0))
        .fold(0.0, f64::max)
}

fn check(predictions: &[f64], actuals: &[f64]) {
    assert_eq!(
        predictions.len(),
        actuals.len(),
        "prediction/actual length mismatch"
    );
    assert!(!predictions.is_empty(), "empty series");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_zero_error() {
        let s = [3.0, 5.0, 8.0];
        assert_eq!(mae(&s, &s), 0.0);
        assert_eq!(rmse(&s, &s), 0.0);
        assert_eq!(mape(&s, &s), 0.0);
        assert_eq!(max_relative_error(&s, &s), 0.0);
    }

    #[test]
    fn known_values() {
        let p = [2.0, 4.0];
        let a = [4.0, 8.0];
        assert!((mae(&p, &a) - 3.0).abs() < 1e-12);
        assert!((rmse(&p, &a) - (10.0f64).sqrt()).abs() < 1e-12);
        assert!((mape(&p, &a) - 0.5).abs() < 1e-12);
        assert!((max_relative_error(&p, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mape_clamps_zero_actuals() {
        let p = [1.0];
        let a = [0.0];
        assert!((mape(&p, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_panics() {
        let _ = rmse(&[], &[]);
    }

    /// RMSE ≥ MAE always (Jensen's inequality).
    #[test]
    fn prop_rmse_dominates_mae() {
        testkit::check(64, |g| {
            let pairs = g.vec(1..50, |g| {
                (g.f64_in(-100.0..100.0), g.f64_in(-100.0..100.0))
            });
            let p: Vec<f64> = pairs.iter().map(|x| x.0).collect();
            let a: Vec<f64> = pairs.iter().map(|x| x.1).collect();
            assert!(rmse(&p, &a) + 1e-9 >= mae(&p, &a));
        });
    }

    /// max_relative_error bounds mape.
    #[test]
    fn prop_max_bounds_mean() {
        testkit::check(64, |g| {
            let pairs = g.vec(1..50, |g| {
                (g.f64_in(-100.0..100.0), g.f64_in(-100.0..100.0))
            });
            let p: Vec<f64> = pairs.iter().map(|x| x.0).collect();
            let a: Vec<f64> = pairs.iter().map(|x| x.1).collect();
            assert!(max_relative_error(&p, &a) + 1e-9 >= mape(&p, &a));
        });
    }
}
