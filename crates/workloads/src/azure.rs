//! Azure-Functions-style multi-tenant workload (the §III-B discussion).
//!
//! The Azure characterization the paper cites as \[27\] (Shahrad et al.) found
//! a hugely skewed population: a small fraction of functions receives almost
//! all invocations, many functions run on regular timers, and a long tail is
//! invoked rarely — exactly the regime where per-type keep-alive windows
//! (and HotC's per-type pools) beat a global fixed TTL.
//!
//! [`azure_workload`] synthesizes such a population deterministically:
//!
//! * **hot** functions: Poisson arrivals at seconds-scale rates,
//! * **periodic** functions: timer-driven with a fixed period and jitter,
//! * **rare** functions: Poisson with inter-arrival means of tens of
//!   minutes — each invocation is a keep-alive stress test.

use crate::Arrival;
use simclock::{SimDuration, SimRng, SimTime};

/// Invocation class of a synthesized function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionClass {
    /// High-rate Poisson traffic.
    Hot,
    /// Timer-driven, fixed period with jitter.
    Periodic,
    /// Rarely invoked (long exponential gaps).
    Rare,
}

impl FunctionClass {
    /// Class name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            FunctionClass::Hot => "hot",
            FunctionClass::Periodic => "periodic",
            FunctionClass::Rare => "rare",
        }
    }
}

/// Description of one synthesized function.
#[derive(Debug, Clone)]
pub struct FunctionMix {
    /// The function's config id in the emitted arrivals.
    pub config_id: usize,
    /// Its invocation class.
    pub class: FunctionClass,
    /// Mean inter-arrival time.
    pub mean_gap: SimDuration,
}

/// Parameters of the synthesized population.
#[derive(Debug, Clone)]
pub struct AzureWorkloadParams {
    /// Total functions.
    pub functions: usize,
    /// Fraction of hot functions (default 0.1).
    pub hot_fraction: f64,
    /// Fraction of periodic functions (default 0.3; the rest are rare).
    pub periodic_fraction: f64,
    /// Simulated span.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AzureWorkloadParams {
    fn default() -> Self {
        AzureWorkloadParams {
            functions: 20,
            hot_fraction: 0.1,
            periodic_fraction: 0.3,
            duration: SimDuration::from_mins(120),
            seed: 0xA2773E,
        }
    }
}

/// Synthesizes the population and its arrivals. Returns the time-ordered
/// arrivals plus the per-function mix (for reporting).
pub fn azure_workload(params: &AzureWorkloadParams) -> (Vec<Arrival>, Vec<FunctionMix>) {
    assert!(params.functions > 0, "need at least one function");
    let mut rng = SimRng::seeded(params.seed);
    let hot_count = ((params.functions as f64 * params.hot_fraction).round() as usize).max(1);
    let periodic_count = (params.functions as f64 * params.periodic_fraction).round() as usize;

    let mut mixes = Vec::with_capacity(params.functions);
    let mut arrivals = Vec::new();
    let horizon = params.duration.as_secs_f64();

    for config_id in 0..params.functions {
        let class = if config_id < hot_count {
            FunctionClass::Hot
        } else if config_id < hot_count + periodic_count {
            FunctionClass::Periodic
        } else {
            FunctionClass::Rare
        };
        let mut frng = rng.fork();
        let mean_gap_s = match class {
            FunctionClass::Hot => 2.0 + frng.unit() * 8.0, // 2–10 s
            FunctionClass::Periodic => 60.0 * (1.0 + frng.unit() * 9.0), // 1–10 min timers
            FunctionClass::Rare => 60.0 * (20.0 + frng.unit() * 40.0), // 20–60 min
        };
        mixes.push(FunctionMix {
            config_id,
            class,
            mean_gap: SimDuration::from_secs_f64(mean_gap_s),
        });

        let mut t = frng.unit() * mean_gap_s; // desynchronized starts
        while t < horizon {
            arrivals.push(Arrival {
                at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                config_id,
            });
            t += match class {
                // Timers tick with ±5 % jitter; Poisson classes draw gaps.
                FunctionClass::Periodic => mean_gap_s * frng.jitter(0.05),
                _ => frng.exponential(mean_gap_s),
            };
        }
    }
    // Total order (at, config_id): sorting by `at` alone left equal-timestamp
    // ordering to stable-sort incidentals (generation order), which the
    // streaming merge in `trace` could not reproduce. The explicit key makes
    // ties deterministic and merge-reproducible; within one (at, config_id)
    // pair, stable sort preserves per-function emission order (seq).
    arrivals.sort_by_key(|a| (a.at, a.config_id));
    (arrivals, mixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_time_ordered;

    fn params() -> AzureWorkloadParams {
        AzureWorkloadParams::default()
    }

    #[test]
    fn population_mix_matches_fractions() {
        let (_, mixes) = azure_workload(&params());
        let count = |class| mixes.iter().filter(|m| m.class == class).count();
        assert_eq!(count(FunctionClass::Hot), 2);
        assert_eq!(count(FunctionClass::Periodic), 6);
        assert_eq!(count(FunctionClass::Rare), 12);
    }

    #[test]
    fn hot_functions_dominate_invocations() {
        let (arrivals, mixes) = azure_workload(&params());
        let hot_ids: Vec<usize> = mixes
            .iter()
            .filter(|m| m.class == FunctionClass::Hot)
            .map(|m| m.config_id)
            .collect();
        let hot_invocations = arrivals
            .iter()
            .filter(|a| hot_ids.contains(&a.config_id))
            .count();
        // 10 % of functions take the overwhelming majority of traffic.
        assert!(
            hot_invocations as f64 / arrivals.len() as f64 > 0.8,
            "hot share {}",
            hot_invocations as f64 / arrivals.len() as f64
        );
    }

    #[test]
    fn rare_functions_do_get_invoked() {
        let (arrivals, mixes) = azure_workload(&params());
        for m in mixes.iter().filter(|m| m.class == FunctionClass::Rare) {
            let n = arrivals
                .iter()
                .filter(|a| a.config_id == m.config_id)
                .count();
            // 2 h span with 20–60 min gaps: a handful each.
            assert!(n >= 1, "rare fn {} never invoked", m.config_id);
            assert!(n <= 12, "rare fn {} invoked {n} times", m.config_id);
        }
    }

    #[test]
    fn periodic_gaps_are_regular() {
        let (arrivals, mixes) = azure_workload(&params());
        let m = mixes
            .iter()
            .find(|m| m.class == FunctionClass::Periodic)
            .unwrap();
        let times: Vec<f64> = arrivals
            .iter()
            .filter(|a| a.config_id == m.config_id)
            .map(|a| a.at.as_secs_f64())
            .collect();
        assert!(times.len() >= 5);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        for g in &gaps {
            assert!(
                (g - mean).abs() / mean < 0.15,
                "periodic gap {g} vs mean {mean}"
            );
        }
    }

    #[test]
    fn workload_is_ordered_and_deterministic() {
        let (a, _) = azure_workload(&params());
        let (b, _) = azure_workload(&params());
        assert!(is_time_ordered(&a));
        assert_eq!(a, b);
        let different = AzureWorkloadParams {
            seed: 1,
            ..params()
        };
        let (c, _) = azure_workload(&different);
        assert_ne!(a, c);
    }
}
