//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! Both are thin wrappers around a `u64` nanosecond count. Arithmetic is
//! saturating rather than panicking: workload generators routinely compute
//! "previous tick minus interval" near the epoch, and saturation keeps those
//! edge cases well-defined (clamped to the epoch / zero).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, measured in nanoseconds since the
/// simulation epoch (time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked add of a duration: `None` when the instant would pass
    /// [`SimTime::MAX`]. Workload generators use this to turn the silent
    /// saturation of `+` (which would collapse late arrivals onto one
    /// instant) into a loud error near the timeline boundary.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span; used as an "infinite" sentinel (e.g.
    /// a keep-alive policy that never expires).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, clamped to `[0, MAX]`.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = (s * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Creates a span from a float number of milliseconds, clamped.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, clamped to `[0, MAX]`. Used by the
    /// hardware-profile cost model (e.g. Raspberry Pi ⇒ 10× slower compute).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked division producing the number of whole `other` spans in `self`
    /// (zero when `other` is zero).
    pub fn div_duration(self, other: SimDuration) -> u64 {
        self.0.checked_div(other.0).unwrap_or(0)
    }

    /// Checked multiply by an integer count: `None` on overflow. The `Mul`
    /// operator saturates (fine for cost models, where `MAX` means
    /// "forever"), but interval×index schedule math must not silently clamp —
    /// that would pile every overflowed arrival onto `u64::MAX` ns.
    pub fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        self.0.checked_mul(rhs).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d).as_millis(), 15);
        assert_eq!((t - d).as_millis(), 5);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn checked_arithmetic_reports_overflow() {
        let near_max = SimTime::from_nanos(u64::MAX - 10);
        assert_eq!(
            near_max.checked_add(SimDuration::from_nanos(10)),
            Some(SimTime::MAX)
        );
        assert_eq!(near_max.checked_add(SimDuration::from_nanos(11)), None);
        let big = SimDuration::from_nanos(u64::MAX / 2);
        assert_eq!(
            big.checked_mul(2),
            Some(SimDuration::from_nanos(u64::MAX - 1))
        );
        assert_eq!(big.checked_mul(3), None);
        // Contrast with the operator, which clamps.
        assert_eq!(big * 3, SimDuration::MAX);
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_millis(), 250);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(10.0).as_secs(), 1);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.5).as_millis(), 50);
    }

    #[test]
    fn div_duration_counts_intervals() {
        let hour = SimDuration::from_mins(60);
        assert_eq!(hour.div_duration(SimDuration::from_mins(15)), 4);
        assert_eq!(hour.div_duration(SimDuration::ZERO), 0);
    }

    #[test]
    fn display_formats_pick_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }

    #[test]
    fn sum_accumulates() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }
}
