//! Experiment harness for the HotC reproduction.
//!
//! Every figure in the paper's evaluation has a module under [`experiments`]
//! that sets up the scenario, runs it on the simulated substrate, and
//! returns a structured result with a text rendering. The `repro` binary
//! prints them (`repro all`, `repro fig12`, …); the workspace integration
//! tests assert the paper-shape properties on the same structs.
//!
//! [`driver`] holds the discrete-event workload driver shared by the
//! experiments: it feeds an arrival sequence through a [`faas::Gateway`]
//! with overlapping requests and periodic provider ticks.

pub mod driver;
pub mod experiments;
pub mod harness;

pub use driver::{
    run_partitioned, run_trace, run_trace_partition, run_workload, RunOutcome, TraceOutcome,
};
pub use harness::{BenchResult, Harness};

/// Thread counts the contention bench drives through the sharded gateway.
///
/// The CI perf gate (`src/bin/gate.rs` via `ci/gates.json`) checks records
/// named `sharded_gateway/{n}_threads` for these counts, so the bench and
/// the gate must agree on the curve — this const is the single source.
pub const CONTENTION_THREADS: &[usize] = &[1, 2, 4, 8, 16, 32];
