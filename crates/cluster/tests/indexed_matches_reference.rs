//! Property test: the indexed scheduler and the naive reference-scan
//! scheduler ([`ReferenceCluster`]) make the same decisions.
//!
//! Two clusters with identical nodes, functions, policy, staleness, and
//! placement seed are driven in lockstep through seeded waves of
//! overlapping requests, random-order completions, idle gaps, and
//! maintenance ticks. Every placement must agree on the chosen node AND on
//! whether it cold-started; at the end the aggregate stats must be
//! identical. This pins the tentpole refactor — incremental debits, point
//! touches, epoch-gated resyncs, power-of-two-choices — to the obvious
//! scan-everything semantics, decision for decision.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::{AppProfile, FunctionSpec, Gateway};
use hotc::HotC;
use hotc_cluster::{Cluster, ReferenceCluster, SchedulePolicy};
use simclock::{SimDuration, SimTime};

fn gateways(nodes: usize, hetero: bool) -> Vec<(String, Gateway<HotC>)> {
    (0..nodes)
        .map(|i| {
            let hw = if hetero && i % 2 == 1 {
                HardwareProfile::raspberry_pi3()
            } else {
                HardwareProfile::server()
            };
            (
                format!("node-{i}"),
                Gateway::new(
                    ContainerEngine::with_local_images(hw),
                    HotC::with_defaults(),
                ),
            )
        })
        .collect()
}

fn function(f: usize) -> FunctionSpec {
    let app = AppProfile::qr_code(LanguageRuntime::Go);
    let mut config = app.default_config();
    config.exec.env.insert("TENANT".into(), f.to_string());
    FunctionSpec::from_app(app)
        .named(format!("fn-{f}"))
        .with_config(config)
}

#[test]
fn indexed_placement_matches_reference_scan() {
    testkit::check(24, |g| {
        let nodes = g.usize_in(1..6);
        let policy = *g.pick(&[
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::ReuseAffinity,
            SchedulePolicy::CostAware,
        ]);
        let staleness = SimDuration::from_secs(*g.pick(&[0u64, 30, 90]));
        let seed = g.u64_in(0..u64::MAX);
        let nfuncs = g.usize_in(1..7);
        let hetero = g.bool();
        let label = format!(
            "nodes={nodes} policy={} staleness={staleness} seed={seed} nfuncs={nfuncs} hetero={hetero}",
            policy.name()
        );

        let mut indexed = Cluster::new(policy, gateways(nodes, hetero));
        let mut reference = ReferenceCluster::new(policy, gateways(nodes, hetero), seed);
        indexed.set_placement_seed(seed);
        indexed.set_warm_view_staleness(staleness);
        reference.set_warm_view_staleness(staleness);
        for f in 0..nfuncs {
            indexed.register_everywhere(function(f));
            reference.register_everywhere(function(f));
        }

        let mut now = SimTime::ZERO;
        for wave in 0..12 {
            let overlap = g.usize_in(1..5);
            let mut ti = Vec::new();
            let mut tr = Vec::new();
            for _ in 0..overlap {
                let name = format!("fn-{}", g.usize_in(0..nfuncs));
                let a = indexed.begin(&name, now).expect("indexed begin");
                let b = reference.begin(&name, now).expect("reference begin");
                assert_eq!(
                    a.node, b.node,
                    "wave {wave}: {name} placed differently ({label})"
                );
                assert_eq!(
                    a.inner.cold, b.inner.cold,
                    "wave {wave}: {name} cold flags differ on node {} ({label})",
                    a.node
                );
                now += SimDuration::from_millis(g.u64_in(0..50));
                ti.push(a);
                tr.push(b);
            }
            // Finish in a seeded random order (same order on both sides).
            while !ti.is_empty() {
                let pick = g.usize_in(0..ti.len());
                let a = ti.swap_remove(pick);
                let b = tr.swap_remove(pick);
                now = now.max(a.inner.t4_func_end) + SimDuration::from_millis(1);
                indexed.finish(a).expect("indexed finish");
                reference.finish(b).expect("reference finish");
            }
            now += SimDuration::from_secs(g.u64_in(1..60));
            if g.bool() {
                indexed.tick(now).expect("indexed tick");
                reference.tick(now).expect("reference tick");
                now += SimDuration::from_secs(1);
            }
        }
        assert_eq!(indexed.stats(), reference.stats(), "{label}");
    });
}
