//! Host resource accounting: memory, swap, and CPU usage.
//!
//! HotC's eviction heuristic (§IV-B) monitors `used_mem` and `used_swap` "in
//! the kernel" and reclaims the oldest live container when usage crosses a
//! threshold (80 % in the paper's configuration). The Fig. 15 overhead
//! experiment also samples this accounting over time.

use crate::costmodel;
use crate::hardware::HardwareProfile;

/// A point-in-time resource sample (one row of the Fig. 15 timelines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSample {
    /// Used physical memory in bytes.
    pub used_mem: u64,
    /// Used swap in bytes.
    pub used_swap: u64,
    /// CPU utilization as a fraction of all cores, in `[0, 1]`.
    pub cpu: f64,
}

/// Tracks a host's resources as containers and applications come and go.
#[derive(Debug, Clone)]
pub struct HostResources {
    hw: HardwareProfile,
    /// Baseline usage by the OS and daemons.
    base_mem: u64,
    base_cpu: f64,
    /// Memory pinned by live (idle) containers, beyond the baseline.
    container_mem: u64,
    /// Memory used by running application processes.
    app_mem: u64,
    /// CPU used by running application processes (fraction of all cores).
    app_cpu: f64,
    /// Number of live containers (for idle CPU overhead).
    live_containers: u64,
    /// Swap used (spill when memory demand exceeds physical).
    used_swap: u64,
}

impl HostResources {
    /// A fresh host with OS baseline usage (~4 % of memory, 1 % CPU).
    pub fn new(hw: HardwareProfile) -> Self {
        let base_mem = hw.mem_bytes / 25;
        HostResources {
            hw,
            base_mem,
            base_cpu: 0.01,
            container_mem: 0,
            app_mem: 0,
            app_cpu: 0.0,
            live_containers: 0,
            used_swap: 0,
        }
    }

    /// The hardware profile backing this host.
    pub fn hardware(&self) -> &HardwareProfile {
        &self.hw
    }

    /// Registers a live container's idle footprint (container overhead plus
    /// its idle runtime memory).
    pub fn add_live_container(&mut self, runtime_idle_mem: u64) {
        self.live_containers += 1;
        self.container_mem += costmodel::LIVE_CONTAINER_MEM_BYTES + runtime_idle_mem;
        self.rebalance_swap();
    }

    /// Removes a live container's idle footprint.
    pub fn remove_live_container(&mut self, runtime_idle_mem: u64) {
        debug_assert!(self.live_containers > 0, "container count underflow");
        self.live_containers = self.live_containers.saturating_sub(1);
        self.container_mem = self
            .container_mem
            .saturating_sub(costmodel::LIVE_CONTAINER_MEM_BYTES + runtime_idle_mem);
        self.rebalance_swap();
    }

    /// Charges a running application's footprint (call on exec start).
    pub fn app_started(&mut self, mem_bytes: u64, cpu_cores: f64) {
        self.app_mem += mem_bytes;
        self.app_cpu += cpu_cores / self.hw.cores as f64;
        self.rebalance_swap();
    }

    /// Releases a running application's footprint (call on exec end). "The
    /// OS will automatically recycle the unused resources quickly" (§V-E).
    pub fn app_finished(&mut self, mem_bytes: u64, cpu_cores: f64) {
        self.app_mem = self.app_mem.saturating_sub(mem_bytes);
        self.app_cpu = (self.app_cpu - cpu_cores / self.hw.cores as f64).max(0.0);
        self.rebalance_swap();
    }

    /// Total memory demand (baseline + containers + apps).
    fn demand(&self) -> u64 {
        self.base_mem + self.container_mem + self.app_mem
    }

    /// Spills demand beyond physical memory into swap.
    fn rebalance_swap(&mut self) {
        let demand = self.demand();
        self.used_swap = demand
            .saturating_sub(self.hw.mem_bytes)
            .min(self.hw.swap_bytes);
    }

    /// Used physical memory in bytes (capped at physical size).
    pub fn used_mem(&self) -> u64 {
        self.demand().min(self.hw.mem_bytes)
    }

    /// Used swap in bytes.
    pub fn used_swap(&self) -> u64 {
        self.used_swap
    }

    /// Memory pressure as a fraction: (used_mem + used_swap) / physical.
    /// This is the quantity HotC compares against its 80 % threshold.
    pub fn memory_pressure(&self) -> f64 {
        (self.used_mem() + self.used_swap) as f64 / self.hw.mem_bytes as f64
    }

    /// Current CPU utilization (baseline + idle container overhead + apps),
    /// as a fraction of all cores, capped at 1.0.
    pub fn cpu_usage(&self) -> f64 {
        (self.base_cpu
            + self.live_containers as f64 * costmodel::LIVE_CONTAINER_CPU_FRACTION
            + self.app_cpu)
            .min(1.0)
    }

    /// Number of live containers currently registered.
    pub fn live_containers(&self) -> u64 {
        self.live_containers
    }

    /// CPU cores currently consumed by running applications.
    pub fn app_cores_in_use(&self) -> f64 {
        self.app_cpu * self.hw.cores as f64
    }

    /// Takes a point-in-time sample for the Fig. 15 timelines.
    pub fn sample(&self) -> ResourceSample {
        ResourceSample {
            used_mem: self.used_mem(),
            used_swap: self.used_swap,
            cpu: self.cpu_usage(),
        }
    }
}

impl stdshim::ToJson for ResourceSample {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::object([
            ("used_mem", stdshim::ToJson::to_json(&self.used_mem)),
            ("used_swap", stdshim::ToJson::to_json(&self.used_swap)),
            ("cpu", stdshim::ToJson::to_json(&self.cpu)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostResources {
        HostResources::new(HardwareProfile::server())
    }

    #[test]
    fn live_containers_cost_little() {
        let mut h = host();
        let before = h.sample();
        for _ in 0..10 {
            h.add_live_container(2 * 1024 * 1024);
        }
        let after = h.sample();
        // Fig 15(a): ten live containers add <1 % CPU and a few MB.
        assert!(after.cpu - before.cpu < 0.01);
        let added_mb = (after.used_mem - before.used_mem) as f64 / (1024.0 * 1024.0);
        assert!(added_mb < 40.0, "added {added_mb} MB");
    }

    #[test]
    fn app_dominates_container_overhead() {
        let mut h = host();
        h.add_live_container(48 * 1024 * 1024); // JVM idle
        let idle = h.sample();
        // Cassandra-like app: 8 GB heap, 4 cores.
        h.app_started(8 * 1024 * 1024 * 1024, 4.0);
        let busy = h.sample();
        // The app's footprint delta dwarfs the live container's own (≈49 MB).
        let container_overhead = 49 * 1024 * 1024;
        assert!(busy.used_mem - idle.used_mem > 100 * container_overhead);
        assert!(busy.cpu > idle.cpu + 0.15);
        h.app_finished(8 * 1024 * 1024 * 1024, 4.0);
        let recycled = h.sample();
        assert_eq!(recycled.used_mem, idle.used_mem);
        assert!((recycled.cpu - idle.cpu).abs() < 1e-9);
    }

    #[test]
    fn swap_spills_beyond_physical() {
        let mut h = HostResources::new(HardwareProfile::raspberry_pi3());
        // Pi has 1 GB; demand 1.2 GB of app memory.
        h.app_started(1_200 * 1024 * 1024, 1.0);
        assert!(h.used_swap() > 0);
        assert!(h.memory_pressure() > 1.0);
        h.app_finished(1_200 * 1024 * 1024, 1.0);
        assert_eq!(h.used_swap(), 0);
    }

    #[test]
    fn pressure_crosses_threshold_with_enough_apps() {
        let mut h = host();
        assert!(h.memory_pressure() < 0.8);
        // 20 apps × 3 GB on a 64 GB host → 60 GB demand + baseline > 80 %.
        for _ in 0..20 {
            h.app_started(3 * 1024 * 1024 * 1024, 0.5);
        }
        assert!(h.memory_pressure() > 0.8);
    }

    #[test]
    fn cpu_capped_at_one() {
        let mut h = host();
        h.app_started(1024, 100.0);
        assert!(h.cpu_usage() <= 1.0);
    }

    /// Adding then removing any set of containers returns to baseline.
    #[test]
    fn prop_container_accounting_balances() {
        testkit::check(64, |g| {
            let mems = g.vec(1..50, |g| g.u64_in(0..64 * 1024 * 1024));
            let mut h = host();
            let before = h.sample();
            for &m in &mems {
                h.add_live_container(m);
            }
            assert_eq!(h.live_containers(), mems.len() as u64);
            for &m in &mems {
                h.remove_live_container(m);
            }
            let after = h.sample();
            assert_eq!(before.used_mem, after.used_mem);
            assert_eq!(h.live_containers(), 0);
            assert!((before.cpu - after.cpu).abs() < 1e-12);
        });
    }

    /// Memory pressure is monotone in app demand.
    #[test]
    fn prop_pressure_monotone() {
        testkit::check(64, |g| {
            let mems = g.vec(1..30, |g| g.u64_in(1..4 * 1024 * 1024 * 1024));
            let mut h = host();
            let mut last = h.memory_pressure();
            for &m in &mems {
                h.app_started(m, 0.1);
                let p = h.memory_pressure();
                assert!(p >= last - 1e-12);
                last = p;
            }
        });
    }
}
