//! Baseline predictors the paper compares against (implicitly or via the
//! industry practices of §III-B).

use crate::Predictor;

use std::collections::VecDeque;
use stdshim::{JsonValue, ToJson};

/// Predicts the last observed value (naive persistence).
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
    observations: usize,
}

impl LastValue {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for LastValue {
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
        self.observations += 1;
    }
    fn predict(&self) -> f64 {
        self.last.unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
    fn observations(&self) -> usize {
        self.observations
    }
}

/// Predicts the mean of the last `w` observations.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
    observations: usize,
}

impl MovingAverage {
    /// Creates a moving average over a window of `w ≥ 1` samples.
    pub fn new(w: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        MovingAverage {
            window: w,
            buf: VecDeque::with_capacity(w),
            sum: 0.0,
            observations: 0,
        }
    }
}

impl Predictor for MovingAverage {
    fn observe(&mut self, value: f64) {
        self.buf.push_back(value);
        self.sum += value;
        if self.buf.len() > self.window {
            if let Some(evicted) = self.buf.pop_front() {
                self.sum -= evicted;
            }
        }
        self.observations += 1;
    }
    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }
    fn name(&self) -> &'static str {
        "moving-average"
    }
    fn observations(&self) -> usize {
        self.observations
    }
}

/// Always predicts a fixed value: static over-provisioning, the degenerate
/// policy behind "keep N containers warm no matter what".
#[derive(Debug, Clone)]
pub struct FixedValue {
    value: f64,
    observations: usize,
}

impl FixedValue {
    /// Creates the constant predictor.
    pub fn new(value: f64) -> Self {
        FixedValue {
            value,
            observations: 0,
        }
    }
}

impl Predictor for FixedValue {
    fn observe(&mut self, _value: f64) {
        self.observations += 1;
    }
    fn predict(&self) -> f64 {
        self.value
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn observations(&self) -> usize {
        self.observations
    }
}

/// Histogram predictor in the spirit of the Azure hybrid-histogram policy the
/// paper cites as \[27\]: predicts a high percentile of the observed demand
/// distribution, trading extra warm capacity for fewer cold starts.
#[derive(Debug, Clone)]
pub struct HistogramPredictor {
    /// Percentile in `[0, 1]` to provision for (e.g. 0.95).
    percentile: f64,
    /// Observations bucketed at integer granularity.
    counts: Vec<u64>,
    total: u64,
    observations: usize,
}

impl HistogramPredictor {
    /// Creates a histogram predictor targeting the given percentile.
    pub fn new(percentile: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&percentile),
            "percentile must be in [0,1]"
        );
        HistogramPredictor {
            percentile,
            counts: Vec::new(),
            total: 0,
            observations: 0,
        }
    }
}

impl Predictor for HistogramPredictor {
    fn observe(&mut self, value: f64) {
        let bucket = value.max(0.0).round() as usize;
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.observations += 1;
    }

    fn predict(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (self.percentile * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return bucket as f64;
            }
        }
        (self.counts.len() - 1) as f64
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
    fn observations(&self) -> usize {
        self.observations
    }
}

impl ToJson for LastValue {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

impl ToJson for MovingAverage {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("window", self.window.to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

impl ToJson for FixedValue {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("value", self.value.to_json()),
            ("observations", self.observations().to_json()),
        ])
    }
}

impl ToJson for HistogramPredictor {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("percentile", self.percentile.to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_persists() {
        let mut p = LastValue::new();
        assert_eq!(p.predict(), 0.0);
        p.observe(3.0);
        p.observe(7.0);
        assert_eq!(p.predict(), 7.0);
    }

    #[test]
    fn moving_average_windows() {
        let mut p = MovingAverage::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            p.observe(x);
        }
        // Window holds [2, 3, 4].
        assert!((p.predict() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_partial_window() {
        let mut p = MovingAverage::new(10);
        p.observe(4.0);
        p.observe(6.0);
        assert!((p.predict() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn moving_average_zero_window_rejected() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn fixed_never_moves() {
        let mut p = FixedValue::new(12.0);
        for x in [0.0, 100.0, -5.0] {
            p.observe(x);
        }
        assert_eq!(p.predict(), 12.0);
    }

    #[test]
    fn histogram_percentile() {
        let mut p = HistogramPredictor::new(0.9);
        // 90 observations of 2, 10 of 10: p90 = 2 boundary, p95 would be 10.
        for _ in 0..90 {
            p.observe(2.0);
        }
        for _ in 0..10 {
            p.observe(10.0);
        }
        assert_eq!(p.predict(), 2.0);
        let mut p99 = HistogramPredictor::new(0.99);
        for _ in 0..90 {
            p99.observe(2.0);
        }
        for _ in 0..10 {
            p99.observe(10.0);
        }
        assert_eq!(p99.predict(), 10.0);
    }

    #[test]
    fn histogram_empty_predicts_zero() {
        let p = HistogramPredictor::new(0.95);
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,1]")]
    fn histogram_bad_percentile_rejected() {
        let _ = HistogramPredictor::new(1.5);
    }

    /// Moving average always lies within the window's min/max.
    #[test]
    fn prop_moving_average_bounded() {
        testkit::check(64, |g| {
            let w = g.usize_in(1..10);
            let series = g.vec(1..60, |g| g.f64_in(-100.0..100.0));
            let mut p = MovingAverage::new(w);
            for &x in &series {
                p.observe(x);
            }
            let tail: Vec<f64> = series.iter().rev().take(w).cloned().collect();
            let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let pred = p.predict();
            assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        });
    }

    /// Histogram prediction is a value that was actually observed (for
    /// integer inputs) and increases with the target percentile.
    #[test]
    fn prop_histogram_monotone_in_percentile() {
        testkit::check(64, |g| {
            let series = g.vec(1..100, |g| g.u8_in(0..50));
            let mut lo = HistogramPredictor::new(0.5);
            let mut hi = HistogramPredictor::new(0.99);
            for &x in &series {
                lo.observe(x as f64);
                hi.observe(x as f64);
            }
            assert!(hi.predict() >= lo.predict());
        });
    }
}
