//! Simulation-kernel micro-benchmarks: the event queue and driver overhead
//! that every experiment pays per scheduled request.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simclock::{EventQueue, SimDuration, SimTime, Simulation};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simkernel/queue_push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1000u64 {
                    // Scatter timestamps to exercise heap reordering.
                    q.push(SimTime::from_nanos((i * 7919) % 4096), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation_steps(c: &mut Criterion) {
    c.bench_function("simkernel/simulation_10k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0u64);
            fn tick(s: &mut simclock::Scheduler<u64>, n: &mut u64) {
                *n += 1;
                if *n < 10_000 {
                    s.schedule_in(SimDuration::from_micros(10), tick);
                }
            }
            sim.schedule_at(SimTime::ZERO, tick);
            sim.run();
            black_box(*sim.state())
        })
    });
}

fn bench_rng_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("simkernel/rng");
    group.bench_function("exponential", |b| {
        let mut rng = simclock::SimRng::seeded(1);
        b.iter(|| black_box(rng.exponential(10.0)))
    });
    group.bench_function("poisson_small_lambda", |b| {
        let mut rng = simclock::SimRng::seeded(2);
        b.iter(|| black_box(rng.poisson(5.0)))
    });
    group.bench_function("zipf_14", |b| {
        let mut rng = simclock::SimRng::seeded(3);
        b.iter(|| black_box(rng.zipf(14, 1.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_simulation_steps,
    bench_rng_distributions
);
criterion_main!(benches);
