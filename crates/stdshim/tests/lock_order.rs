//! Seeded-deadlock tests for the debug-build lock-order sanitizer.
//!
//! Each test uses class names unique to itself: the lock-order graph is
//! process-global and never forgets an edge, so sharing a class across
//! tests would let one test's edges trip another's.
#![cfg(debug_assertions)]

use std::sync::{Arc, OnceLock};
use stdshim::sync::{request_path_scope, Mutex, RwLock};

/// Runs `f` on a fresh thread, expecting it to panic, and returns the panic
/// message. Installs a quiet panic hook once so expected panics don't spray
/// backtraces over the test output.
fn panic_message(f: impl FnOnce() + Send + 'static) -> String {
    static QUIET: OnceLock<()> = OnceLock::new();
    QUIET.get_or_init(|| std::panic::set_hook(Box::new(|_| {})));
    let err = std::thread::spawn(f)
        .join()
        .expect_err("expected a sanitizer panic, but the closure succeeded");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[test]
fn abba_cycle_is_detected_and_names_both_classes() {
    let a = Arc::new(Mutex::labeled(0u32, "abba/left"));
    let b = Arc::new(Mutex::labeled(0u32, "abba/right"));

    // Thread 1 runs the A→B order to completion, seeding the edge.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("first ordering must succeed");
    }

    // Thread 2 attempts B→A: the reverse edge closes a cycle, and the
    // sanitizer panics *before* blocking — under a real interleaving this
    // is the ABBA deadlock.
    let msg = panic_message(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected message: {msg}"
    );
    assert!(msg.contains("abba/left"), "missing class in: {msg}");
    assert!(msg.contains("abba/right"), "missing class in: {msg}");
}

#[test]
fn three_lock_cycle_is_detected_through_the_graph() {
    let a = Arc::new(Mutex::labeled(0u32, "tri/a"));
    let b = Arc::new(Mutex::labeled(0u32, "tri/b"));
    let c = Arc::new(Mutex::labeled(0u32, "tri/c"));

    // Seed a→b and b→c on separate threads.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("a->b must succeed");
    }
    {
        let (b, c) = (Arc::clone(&b), Arc::clone(&c));
        std::thread::spawn(move || {
            let _gb = b.lock();
            let _gc = c.lock();
        })
        .join()
        .expect("b->c must succeed");
    }

    // c→a closes the 3-cycle even though no single thread ever took a and
    // c in the opposite direct order.
    let msg = panic_message(move || {
        let _gc = c.lock();
        let _ga = a.lock();
    });
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected message: {msg}"
    );
    for class in ["tri/a", "tri/b", "tri/c"] {
        assert!(msg.contains(class), "missing {class} in: {msg}");
    }
}

#[test]
fn mutex_reentry_is_detected() {
    let m = Arc::new(Mutex::labeled(0u32, "reentry/mutex"));
    let msg = panic_message(move || {
        let _first = m.lock();
        let _second = m.lock(); // guaranteed self-deadlock without the sanitizer
    });
    assert!(msg.contains("re-entrant"), "unexpected message: {msg}");
    assert!(msg.contains("reentry/mutex"), "missing class in: {msg}");
}

#[test]
fn rwlock_read_reentry_is_detected() {
    // Same-thread read re-entry deadlocks if a writer queues between the
    // two reads, so the sanitizer rejects it outright.
    let l = Arc::new(RwLock::labeled(0u32, "reentry/rwlock"));
    let msg = panic_message(move || {
        let _first = l.read();
        let _second = l.read();
    });
    assert!(msg.contains("re-entrant"), "unexpected message: {msg}");
    assert!(msg.contains("reentry/rwlock"), "missing class in: {msg}");
}

#[test]
fn same_class_nesting_is_detected() {
    // Two *different* locks of one class nested: two threads doing this in
    // opposite instance order deadlock, which a class-level graph cannot
    // see as a cycle — so it is rejected directly.
    let outer = Arc::new(Mutex::labeled(0u32, "sameclass/shard"));
    let inner = Arc::new(Mutex::labeled(0u32, "sameclass/shard"));
    let msg = panic_message(move || {
        let _go = outer.lock();
        let _gi = inner.lock();
    });
    assert!(
        msg.contains("same-class nesting"),
        "unexpected message: {msg}"
    );
    assert!(msg.contains("sameclass/shard"), "missing class in: {msg}");
}

#[test]
fn request_path_scope_trips_on_nested_acquisition() {
    let a = Arc::new(Mutex::labeled(0u32, "scope/first"));
    let b = Arc::new(Mutex::labeled(0u32, "scope/second"));
    let msg = panic_message(move || {
        let _scope = request_path_scope();
        let _ga = a.lock();
        let _gb = b.lock(); // second lock inside the scope: §5 violation
    });
    assert!(
        msg.contains("request-path scope violated"),
        "unexpected message: {msg}"
    );
    assert!(msg.contains("scope/first"), "missing class in: {msg}");
    assert!(msg.contains("scope/second"), "missing class in: {msg}");
}

#[test]
fn request_path_scope_trips_on_try_lock_too() {
    // try_lock cannot deadlock, but a successful try-acquire still *holds*
    // a second lock on the request path — the scope assertion applies.
    let a = Arc::new(Mutex::labeled(0u32, "scopetry/first"));
    let b = Arc::new(Mutex::labeled(0u32, "scopetry/second"));
    let msg = panic_message(move || {
        let _scope = request_path_scope();
        let _ga = a.lock();
        let _gb = b.try_lock();
    });
    assert!(
        msg.contains("request-path scope violated"),
        "unexpected message: {msg}"
    );
}

#[test]
fn request_path_scope_allows_sequential_single_locks() {
    let a = Mutex::labeled(0u32, "scopeseq/a");
    let b = Mutex::labeled(0u32, "scopeseq/b");
    let scope = request_path_scope();
    for _ in 0..3 {
        *a.lock() += 1; // guard dropped at end of statement
        *b.lock() += 1;
    }
    drop(scope);
    assert_eq!(*a.lock(), 3);
    assert_eq!(*b.lock(), 3);
}

#[test]
fn request_path_scope_baseline_tolerates_locks_held_at_entry() {
    // A single-threaded façade may hold an outer gateway lock while the
    // inner pool opens a scope; locks held *at scope entry* are baseline,
    // and one more at a time on top is allowed.
    let outer = Mutex::labeled(0u32, "scopebase/outer");
    let shard = Mutex::labeled(0u32, "scopebase/shard");
    let outer_guard = outer.lock();
    {
        let _scope = request_path_scope();
        *shard.lock() += 1; // one lock beyond baseline: fine
        *shard.lock() += 1;
    }
    drop(outer_guard);
    assert_eq!(*shard.lock(), 2);
}

#[test]
fn scope_expires_when_guard_drops() {
    let a = Mutex::labeled(0u32, "scopedrop/a");
    let b = Mutex::labeled(0u32, "scopedrop/b");
    {
        let _scope = request_path_scope();
        *a.lock() += 1;
    }
    // Scope gone: nesting is legal again (and consistently ordered).
    let _ga = a.lock();
    let mut gb = b.lock();
    *gb += 1;
}

#[test]
fn consistent_global_order_never_panics_under_contention() {
    let a = Arc::new(Mutex::labeled(0u64, "order/outer"));
    let b = Arc::new(RwLock::labeled(0u64, "order/inner"));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            s.spawn(move || {
                for _ in 0..200 {
                    let ga = a.lock();
                    *b.write() += *ga;
                }
            });
        }
    });
    assert_eq!(*b.read(), 0);
}
