//! Non-poisoning synchronization primitives over `std::sync`, with a
//! debug-build lock-order sanitizer.
//!
//! The concurrent experiment drivers want parking_lot-style ergonomics:
//! `.lock()` / `.read()` / `.write()` return guards directly instead of a
//! `Result` wrapping poison state. In this workspace a panic while holding a
//! lock only ever happens when a test assertion already failed, so poison
//! recovery adds nothing but call-site noise — these wrappers simply clear
//! the poison flag and hand out the guard.
//!
//! # Lock-order sanitizer (debug builds only)
//!
//! Under `debug_assertions` every [`Mutex`]/[`RwLock`] participates in a
//! process-wide lock-order sanitizer (see [`self::sanitizer`]):
//!
//! * **Class labels.** [`Mutex::labeled`]/[`RwLock::labeled`] tag a lock
//!   with a `&'static str` class (convention: `"subsystem/role"`, e.g.
//!   `"pool/shard"`). All locks of a class share one node in the global
//!   lock-order graph. Unlabeled locks ([`Mutex::new`]) are tracked on the
//!   held stack (re-entry and scope checks) but record no ordering edges.
//! * **Order graph.** Each thread keeps a stack of currently held locks.
//!   Blocking-acquiring a labeled lock while holding another labeled lock
//!   records a `held-class → acquired-class` edge; an edge that closes a
//!   cycle (the classic ABBA deadlock, or any longer cycle) panics *before*
//!   blocking, naming every class on the cycle and the acquisition sites of
//!   both conflicting edges. Edges are recorded before the blocking wait, so
//!   an interleaving that would deadlock panics instead of hanging.
//! * **Re-entry.** Blocking-acquiring a lock this thread already holds (a
//!   guaranteed self-deadlock for `Mutex`, and a writer-starvation deadlock
//!   risk for `RwLock` read re-entry) panics immediately.
//! * **Request-path scope.** [`request_path_scope`] asserts the DESIGN.md §5
//!   invariant — a request-path thread holds at most one lock at a time —
//!   for the dynamic extent of the returned guard: acquiring a second lock
//!   on top of one taken after scope entry panics with both sites.
//!
//! Non-guarantees: `try_lock`/`try_read`/`try_write` successes are tracked
//! on the held stack (they *hold* the lock) but record no ordering edges — a
//! try-acquire cannot block, so it cannot complete a deadlock by itself.
//! The sanitizer observes orders actually executed; it proves the absence of
//! lock-order cycles only over code paths the test suite exercises.
//!
//! In release builds (`debug_assertions` off) every check compiles away:
//! the lock types store no extra state and the guards are newtypes over the
//! `std::sync` guards — the CI contention benches run on exactly the same
//! code as before the sanitizer existed.

use std::ops::{Deref, DerefMut};

pub use crate::sync_slots::{LazySlotTable, SlotBitmap};

#[cfg(debug_assertions)]
use sanitizer::Tracked;
#[cfg(debug_assertions)]
pub use sanitizer::{request_path_scope, RequestPathScope};

/// Release-build no-op twin of the debug `request_path_scope`.
#[cfg(not(debug_assertions))]
#[must_use = "the scope assertion only covers the guard's lifetime"]
pub fn request_path_scope() -> RequestPathScope {
    RequestPathScope {
        _not_send: std::marker::PhantomData,
    }
}

/// Release-build no-op scope guard (see [`sanitizer::RequestPathScope`]).
#[cfg(not(debug_assertions))]
pub struct RequestPathScope {
    // The scope is a per-thread assertion; keep the type `!Send` in both
    // build profiles so code cannot compile in release and fail in debug.
    _not_send: std::marker::PhantomData<*const ()>,
}

#[cfg(not(debug_assertions))]
impl RequestPathScope {
    /// Release-build twin of the debug lock counter: always `0`. Callers
    /// assert on it via `debug_assert!`, which also compiles away.
    pub fn locks_taken(&self) -> usize {
        0
    }
}

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]; unlocks (and pops the sanitizer's
/// held-lock stack in debug builds) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _tracked: Tracked,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    /// Creates an unlabeled lock holding `value`. Unlabeled locks are
    /// re-entry/scope checked in debug builds but record no ordering edges;
    /// long-lived locks in concurrent subsystems should use
    /// [`Self::labeled`].
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            class: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a lock with a lock-order class label (e.g. `"pool/shard"`).
    /// All locks sharing a class are one node in the debug-build lock-order
    /// graph; in release builds the label is discarded.
    pub fn labeled(value: T, class: &'static str) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = class;
        Mutex {
            #[cfg(debug_assertions)]
            class: Some(class),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(debug_assertions)]
    fn addr(&self) -> usize {
        std::ptr::addr_of!(self.inner) as *const () as usize
    }

    /// Acquires the lock, blocking until it is free. A poisoned lock (a
    /// panic on another thread while holding it) is treated as unlocked.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        sanitizer::before_blocking_acquire(self.addr(), self.class);
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard {
            #[cfg(debug_assertions)]
            _tracked: sanitizer::track(self.addr(), self.class),
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            _tracked: sanitizer::track(self.addr(), self.class),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: Option<&'static str>,
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _tracked: Tracked,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard for [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    _tracked: Tracked,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    /// Creates an unlabeled lock holding `value` (see [`Mutex::new`] for
    /// what "unlabeled" means to the sanitizer).
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            class: None,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock with a lock-order class label (see [`Mutex::labeled`]).
    pub fn labeled(value: T, class: &'static str) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = class;
        RwLock {
            #[cfg(debug_assertions)]
            class: Some(class),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(debug_assertions)]
    fn addr(&self) -> usize {
        std::ptr::addr_of!(self.inner) as *const () as usize
    }

    /// Acquires shared read access, blocking until no writer holds the lock.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        sanitizer::before_blocking_acquire(self.addr(), self.class);
        let inner = self
            .inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            _tracked: sanitizer::track(self.addr(), self.class),
            inner,
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        sanitizer::before_blocking_acquire(self.addr(), self.class);
        let inner = self
            .inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            _tracked: sanitizer::track(self.addr(), self.class),
            inner,
        }
    }

    /// Attempts shared read access without blocking.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            #[cfg(debug_assertions)]
            _tracked: sanitizer::track(self.addr(), self.class),
            inner,
        })
    }

    /// Attempts exclusive write access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            #[cfg(debug_assertions)]
            _tracked: sanitizer::track(self.addr(), self.class),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// The debug-build lock-order sanitizer: per-thread held-lock stacks, a
/// global class-level order graph with cycle detection, re-entry detection,
/// and the [`request_path_scope`] at-most-one-lock assertion.
#[cfg(debug_assertions)]
pub mod sanitizer {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::OnceLock;

    /// One currently held lock on this thread.
    #[derive(Clone, Copy)]
    struct Held {
        addr: usize,
        class: Option<&'static str>,
        site: &'static Location<'static>,
    }

    /// State of one active `request_path_scope` on this thread.
    #[derive(Clone, Copy)]
    struct Scope {
        /// Held-stack depth at scope entry; the at-most-one-lock assertion
        /// is relative to this baseline.
        baseline: usize,
        /// Lock acquisitions (blocking or `try_*`) since scope entry —
        /// readable via [`RequestPathScope::locks_taken`] so warm paths can
        /// assert they took *zero* locks, not merely at most one.
        locks_taken: usize,
    }

    thread_local! {
        /// Stack of locks this thread currently holds (acquisition order).
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        /// Active `request_path_scope`s. Innermost scope governs the
        /// at-most-one-lock assertion; all active scopes count acquisitions.
        static SCOPES: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
    }

    /// A recorded `from-class → to-class` acquisition, with the sites of the
    /// first occurrence (where `from` was held, where `to` was acquired).
    struct Edge {
        holding_site: &'static Location<'static>,
        acquiring_site: &'static Location<'static>,
    }

    #[derive(Default)]
    struct OrderGraph {
        /// `edges[from][to]`: `to` was blocking-acquired while holding
        /// `from`. Never removed: lock order is a whole-program invariant.
        edges: HashMap<&'static str, HashMap<&'static str, Edge>>,
    }

    impl OrderGraph {
        /// A class path `from → … → to` through recorded edges, if any.
        fn path(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
            let mut stack = vec![vec![from]];
            let mut visited = vec![from];
            while let Some(path) = stack.pop() {
                let last = *path.last()?;
                if last == to {
                    return Some(path);
                }
                if let Some(nexts) = self.edges.get(last) {
                    for &next in nexts.keys() {
                        if !visited.contains(&next) {
                            visited.push(next);
                            let mut p = path.clone();
                            p.push(next);
                            stack.push(p);
                        }
                    }
                }
            }
            None
        }

        fn render_path(&self, path: &[&'static str]) -> String {
            let mut out = String::new();
            for pair in path.windows(2) {
                if let Some(edge) = self.edges.get(pair[0]).and_then(|m| m.get(pair[1])) {
                    out.push_str(&format!(
                        "\n  '{}' -> '{}' (held '{}' at {}, acquired '{}' at {})",
                        pair[0], pair[1], pair[0], edge.holding_site, pair[1], edge.acquiring_site,
                    ));
                }
            }
            out
        }
    }

    fn graph() -> &'static std::sync::Mutex<OrderGraph> {
        static GRAPH: OnceLock<std::sync::Mutex<OrderGraph>> = OnceLock::new();
        GRAPH.get_or_init(|| std::sync::Mutex::new(OrderGraph::default()))
    }

    fn class_name(class: Option<&'static str>) -> &'static str {
        class.unwrap_or("<unlabeled>")
    }

    /// Checks a blocking acquisition *before* it blocks: re-entry, scope
    /// violation, and (for labeled locks) order-graph cycles. Panicking here
    /// — while the lock is still free — is what turns a would-be deadlock
    /// into a diagnosed failure.
    #[track_caller]
    pub(super) fn before_blocking_acquire(addr: usize, class: Option<&'static str>) {
        let site = Location::caller();
        let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
        if let Some(prev) = held.iter().find(|e| e.addr == addr) {
            panic!(
                "lock sanitizer: re-entrant acquisition of '{}' at {} \
                 (this thread already holds it, acquired at {})",
                class_name(class),
                site,
                prev.site,
            );
        }
        check_scope(&held, class, site);
        if let Some(to) = class {
            for prev in held.iter() {
                if let Some(from) = prev.class {
                    record_edge(from, prev.site, to, site);
                }
            }
        }
    }

    /// The `request_path_scope` assertion: with a scope active, at most one
    /// lock may be held beyond the scope's entry baseline.
    fn check_scope(held: &[Held], class: Option<&'static str>, site: &'static Location<'static>) {
        SCOPES.with(|s| {
            if let Some(&Scope { baseline, .. }) = s.borrow().last() {
                if held.len() > baseline {
                    // held.len() > baseline >= 0, so last() exists.
                    let top = held[held.len() - 1];
                    panic!(
                        "lock sanitizer: request-path scope violated (at most one lock \
                         on the request path, DESIGN.md §5): acquiring '{}' at {} while \
                         already holding '{}' acquired at {}",
                        class_name(class),
                        site,
                        class_name(top.class),
                        top.site,
                    );
                }
            }
        });
    }

    /// Records `from → to` and panics if the reverse direction is already
    /// reachable, printing the full conflicting chain.
    fn record_edge(
        from: &'static str,
        holding_site: &'static Location<'static>,
        to: &'static str,
        acquiring_site: &'static Location<'static>,
    ) {
        if from == to {
            panic!(
                "lock sanitizer: same-class nesting of '{from}': acquired a second \
                 '{from}' lock at {acquiring_site} while holding one acquired at \
                 {holding_site} — two threads doing this in opposite instance order \
                 deadlock",
            );
        }
        let mut g = graph()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let known = g.edges.get(from).is_some_and(|m| m.contains_key(to));
        if known {
            return; // validated when first recorded
        }
        // Would inserting from→to close a cycle? Look for to ⇝ from first.
        let conflict = g.path(to, from).map(|path| g.render_path(&path));
        g.edges.entry(from).or_default().insert(
            to,
            Edge {
                holding_site,
                acquiring_site,
            },
        );
        drop(g);
        if let Some(chain) = conflict {
            panic!(
                "lock sanitizer: lock-order cycle (ABBA deadlock): acquiring '{to}' \
                 at {acquiring_site} while holding '{from}' acquired at {holding_site}, \
                 but the opposite order is already on record:{chain}",
            );
        }
    }

    /// Pushes a successful acquisition onto the held stack; the returned
    /// token pops it on drop (stored inside the lock guard). `try_*`
    /// successes go through here too: they hold the lock, so re-entry-safe
    /// tracking and the scope assertion still apply.
    #[track_caller]
    pub(super) fn track(addr: usize, class: Option<&'static str>) -> Tracked {
        let site = Location::caller();
        // try_* acquisitions skip before_blocking_acquire; re-apply the
        // scope assertion so a try-acquired second lock is still caught.
        let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
        check_scope(&held, class, site);
        HELD.with(|h| h.borrow_mut().push(Held { addr, class, site }));
        SCOPES.with(|s| {
            for scope in s.borrow_mut().iter_mut() {
                scope.locks_taken += 1;
            }
        });
        Tracked { addr }
    }

    /// Held-stack token embedded in each guard; pops its entry on drop.
    #[derive(Debug)]
    pub(super) struct Tracked {
        addr: usize,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            // Guards may drop in any order: remove the *last* entry with our
            // address (same-address re-entry via try_read pushes two).
            // try_with: thread-local storage may already be gone during
            // thread teardown; bookkeeping for a dying thread is moot.
            let _ = HELD.try_with(|h| {
                let mut held = h.borrow_mut();
                if let Some(at) = held.iter().rposition(|e| e.addr == self.addr) {
                    held.remove(at);
                }
            });
        }
    }

    /// Asserts the DESIGN.md §5 request-path invariant — *a request-path
    /// thread holds at most one lock at a time* — for the guard's lifetime.
    ///
    /// The assertion is relative to scope entry: locks already held when the
    /// scope opens (e.g. a single-threaded façade's outer gateway lock) form
    /// the baseline, and at most one lock may ever be held beyond it. Scopes
    /// nest; the innermost governs. Debug builds only — the release twin is
    /// an empty struct and the call compiles to nothing.
    #[must_use = "the scope assertion only covers the guard's lifetime"]
    pub fn request_path_scope() -> RequestPathScope {
        let baseline = HELD.with(|h| h.borrow().len());
        let index = SCOPES.with(|s| {
            let mut scopes = s.borrow_mut();
            scopes.push(Scope {
                baseline,
                locks_taken: 0,
            });
            scopes.len() - 1
        });
        RequestPathScope {
            index,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Active [`request_path_scope`] assertion (debug builds).
    pub struct RequestPathScope {
        /// Position of this scope's entry in the thread-local scope stack.
        index: usize,
        // Scope state is thread-local: forbid sending the guard elsewhere.
        _not_send: std::marker::PhantomData<*const ()>,
    }

    impl RequestPathScope {
        /// Lock acquisitions (blocking or `try_*` successes) on this thread
        /// since the scope opened. The lock-free warm path asserts this is
        /// `0` — the DESIGN.md §5 "at most one lock" invariant tightened to
        /// "no locks at all" for warm hits. Debug builds only; the release
        /// twin always returns `0`.
        pub fn locks_taken(&self) -> usize {
            SCOPES.with(|s| s.borrow().get(self.index).map_or(0, |sc| sc.locks_taken))
        }
    }

    impl Drop for RequestPathScope {
        fn drop(&mut self) {
            let _ = SCOPES.try_with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_try_lock_contended() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the value is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            // Two simultaneous readers must come from *different* threads:
            // same-thread read re-entry is a sanitizer violation (a queued
            // writer between the two reads deadlocks both).
            let a = l.read();
            assert_eq!(a.len(), 2);
        }
        std::thread::scope(|s| {
            let l = &l;
            let handles: Vec<_> = (0..2).map(|_| s.spawn(move || l.read().len())).collect();
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 4);
        });
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_try_write_blocked_by_reader() {
        let l = RwLock::new(0);
        let guard = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(guard);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 6;
        assert_eq!(*m.lock(), 6);
        let mut l = RwLock::new(5);
        *l.get_mut() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn labeled_locks_round_trip() {
        let m = Mutex::labeled(1, "test/labeled-mutex");
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
        let l = RwLock::labeled(1, "test/labeled-rwlock");
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn consistent_nesting_order_is_fine() {
        // A → B in every thread: edges recorded, no cycle, no panic.
        let a = Arc::new(Mutex::labeled(0, "test/nest-outer"));
        let b = Arc::new(Mutex::labeled(0, "test/nest-inner"));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    for _ in 0..100 {
                        let ga = a.lock();
                        let mut gb = b.lock();
                        *gb += *ga;
                    }
                });
            }
        });
        assert_eq!(*b.lock(), 0);
    }
}
