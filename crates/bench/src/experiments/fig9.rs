//! Figure 9: QR-code web application latency without and with HotC.
//!
//! §V-B: a serverless app transforms URLs into QR codes, implemented in
//! several languages; clients send requests with random configurations. The
//! URL transform itself takes ~60 ms; without HotC almost every request pays
//! a runtime setup, while with HotC the latency drops as the pool warms and
//! "the probability of the same type of request goes up".

use crate::driver::{run_workload, RunOutcome};
use crate::experiments::server_gateway;
use containersim::LanguageRuntime;
use faas::gateway::FunctionSpec;
use faas::policy::ColdStartAlways;
use faas::AppProfile;
use hotc::HotC;
use metrics_lite::{render_series, Table};
use simclock::{SimDuration, SimTime};
use workloads::Arrival;

/// The language variants the clients randomly pick from.
pub const VARIANTS: [LanguageRuntime; 4] = [
    LanguageRuntime::Python,
    LanguageRuntime::Go,
    LanguageRuntime::NodeJs,
    LanguageRuntime::Java,
];

/// Result of the Fig. 9 experiment.
pub struct Fig9Result {
    /// Per-request latency without HotC (arrival order).
    pub default_latencies: Vec<SimDuration>,
    /// Per-request latency with HotC.
    pub hotc_latencies: Vec<SimDuration>,
    /// Mean latency without HotC.
    pub default_mean: SimDuration,
    /// Mean latency with HotC.
    pub hotc_mean: SimDuration,
    /// Cold fraction with HotC (drops toward the number of variants / n).
    pub hotc_cold_fraction: f64,
}

fn qr_workload(requests: usize, seed: u64) -> Vec<Arrival> {
    // Random configuration per request, 2 s apart.
    let mut rng = simclock::SimRng::seeded(seed);
    (0..requests)
        .map(|i| Arrival {
            at: SimTime::ZERO + SimDuration::from_secs(2 * i as u64),
            config_id: rng.index(VARIANTS.len()),
        })
        .collect()
}

fn build_and_run<P: faas::RuntimeProvider + 'static>(
    provider: P,
    workload: &[Arrival],
) -> RunOutcome<P> {
    let mut gw = server_gateway(provider, &[]);
    for (i, lang) in VARIANTS.iter().enumerate() {
        gw.register(FunctionSpec::from_app(AppProfile::qr_code(*lang)).named(format!("qr-{i}")));
    }
    run_workload(
        gw,
        workload,
        |config_id| format!("qr-{config_id}"),
        SimDuration::from_secs(30),
    )
}

/// Runs `requests` randomly-configured QR requests against both backends.
pub fn run(requests: usize, seed: u64) -> Fig9Result {
    let workload = qr_workload(requests, seed);
    let default_out = build_and_run(ColdStartAlways::new(), &workload);
    let hotc_out = build_and_run(HotC::with_defaults(), &workload);
    Fig9Result {
        default_mean: default_out.mean_latency(),
        hotc_mean: hotc_out.mean_latency(),
        hotc_cold_fraction: hotc_out.cold_fraction(),
        default_latencies: default_out.latencies(),
        hotc_latencies: hotc_out.latencies(),
    }
}

impl Fig9Result {
    /// Mean latency of the last quarter of requests with HotC — the "after
    /// the pool warmed" regime the paper highlights.
    pub fn hotc_warm_regime_mean(&self) -> SimDuration {
        let n = self.hotc_latencies.len();
        let tail = &self.hotc_latencies[n - n / 4..];
        let total: SimDuration = tail.iter().copied().sum();
        total / tail.len() as u64
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let labels: Vec<String> = (0..self.default_latencies.len())
            .map(|i| format!("r{i:02}"))
            .collect();
        let mut out = render_series(
            "Fig 9(a): QR latency per request, without HotC (ms)",
            &labels,
            &self
                .default_latencies
                .iter()
                .map(|d| d.as_millis_f64())
                .collect::<Vec<_>>(),
            48,
        );
        out.push('\n');
        out.push_str(&render_series(
            "Fig 9(b): QR latency per request, with HotC (ms)",
            &labels,
            &self
                .hotc_latencies
                .iter()
                .map(|d| d.as_millis_f64())
                .collect::<Vec<_>>(),
            48,
        ));
        let mut summary = Table::new(
            "Fig 9 summary",
            &["backend", "mean_ms", "warm_regime_mean_ms", "cold_fraction"],
        );
        summary.row(&[
            "default".to_string(),
            format!("{:.1}", self.default_mean.as_millis_f64()),
            "-".to_string(),
            "1.00".to_string(),
        ]);
        summary.row(&[
            "hotc".to_string(),
            format!("{:.1}", self.hotc_mean.as_millis_f64()),
            format!("{:.1}", self.hotc_warm_regime_mean().as_millis_f64()),
            format!("{:.2}", self.hotc_cold_fraction),
        ]);
        out.push('\n');
        out.push_str(&summary.render());
        out.push_str(
            "(paper: URL transform ≈60 ms; HotC latency drops once runtimes are pooled)\n",
        );
        out
    }
}
