//! lint-fixture-path: crates/core/src/fixture.rs
use std::sync::atomic::{AtomicU64, Ordering};
fn f(x: &AtomicU64) -> Result<u64, u64> {
    if x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire).is_ok() {
        let _won = x.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire);
    }
    match x
        .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
    {
        Ok(v) => Ok(v),
        Err(v) => Err(v),
    }
}
