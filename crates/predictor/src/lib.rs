#![warn(missing_docs)]

//! Demand predictors for HotC's adaptive live-container control (§IV-C).
//!
//! The paper predicts, per runtime type, how many live containers the next
//! control interval will need, by combining two methods:
//!
//! * **Exponential smoothing** (Eq. 1): `e_t = α·x_t + (1-α)·e_{t-1}` — fits
//!   the *trend* of a short, non-stationary series. The paper selects
//!   α = 0.8 and, for series shorter than 20 points, seeds the initial value
//!   with the mean of the first five observations ([`smoothing`]).
//! * **A Markov chain over value regions** (Eq. 2): the observed range is
//!   partitioned into `n` region states `R_i = [R_{i1}, R_{i2}]`; a k-step
//!   transition matrix `P_ij(k) = T_ij(k)/T_i` is estimated from history and
//!   the prediction is the midpoint of the most probable next region
//!   ([`markov`]). This compensates for the smoothing lag on volatile
//!   serverless workloads.
//!
//! [`combined::EsMarkov`] is the paper's predictor: exponential smoothing
//! anchors the trend and a Markov chain over the smoothing *residuals*
//! corrects the volatility — Fig. 10(a) shows this dropping the relative
//! error from 29 % to 10 % across a demand jump from 8 to 19 containers.
//!
//! [`baseline`] provides the comparison points (last-value, moving average,
//! fixed provisioning, and a histogram predictor in the spirit of the Azure
//! keep-alive work the paper cites as \[27\]).

pub mod baseline;
pub mod combined;
pub mod error;
pub mod holt;
pub mod markov;
pub mod smoothing;

pub use baseline::{FixedValue, HistogramPredictor, LastValue, MovingAverage};
pub use combined::EsMarkov;
pub use error::{mae, mape, max_relative_error, rmse};
pub use holt::Holt;
pub use markov::{MarkovChain, RegionPartition};
pub use smoothing::{ExponentialSmoothing, InitialValue};

/// A one-step-ahead predictor over a scalar time series.
///
/// Implementations observe the series one sample at a time and expose a
/// prediction for the *next* sample. All predictors are deterministic.
pub trait Predictor {
    /// Feeds the next observed value.
    fn observe(&mut self, value: f64);

    /// Predicts the next value. Before any observation this returns the
    /// implementation's neutral prior (usually 0).
    fn predict(&self) -> f64;

    /// Short name for report tables.
    fn name(&self) -> &'static str;

    /// Number of samples observed so far.
    fn observations(&self) -> usize;
}

/// Runs a predictor over a series, returning for each step `t ≥ 1` the
/// prediction that was made *before* observing `series[t]` (one-step-ahead
/// evaluation protocol used for Fig. 10).
pub fn one_step_ahead<P: Predictor + ?Sized>(predictor: &mut P, series: &[f64]) -> Vec<f64> {
    let mut preds = Vec::with_capacity(series.len().saturating_sub(1));
    for (i, &x) in series.iter().enumerate() {
        if i > 0 {
            preds.push(predictor.predict());
        }
        predictor.observe(x);
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_step_ahead_aligns_predictions() {
        let mut p = LastValue::new();
        let series = [1.0, 2.0, 3.0, 4.0];
        let preds = one_step_ahead(&mut p, &series);
        // LastValue predicts the previous observation.
        assert_eq!(preds, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn one_step_ahead_empty_and_single() {
        let mut p = LastValue::new();
        assert!(one_step_ahead(&mut p, &[]).is_empty());
        let mut p = LastValue::new();
        assert!(one_step_ahead(&mut p, &[5.0]).is_empty());
    }
}
