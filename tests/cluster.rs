//! Shape assertions for the §VII extension (cluster scheduling) and the
//! ablation studies.

use hotc_bench::experiments::{ablations, cluster};
use hotc_cluster::SchedulePolicy;

#[test]
fn reuse_affinity_dominates_on_skewed_load() {
    let r = cluster::run(4, 12, 21);
    let rr = r.eval(SchedulePolicy::RoundRobin);
    let ll = r.eval(SchedulePolicy::LeastLoaded);
    let ra = r.eval(SchedulePolicy::ReuseAffinity);

    // Affinity: fewest cold starts and fewest live containers.
    assert!(ra.cold_fraction < rr.cold_fraction);
    assert!(ra.cold_fraction <= ll.cold_fraction);
    assert!(ra.live_containers < rr.live_containers);
    // And it is not slower on average.
    assert!(ra.mean_ms <= rr.mean_ms * 1.02);
    assert!(ra.mean_ms <= ll.mean_ms * 1.02);
    // Round-robin smears every popular runtime across all nodes: roughly
    // nodes × functions warm containers.
    assert!(rr.live_containers >= r.nodes * 8);
    // Round-robin is perfectly balanced by construction.
    assert!((rr.imbalance - 1.0).abs() < 0.05);
}

#[test]
fn ablation_key_policy_fuzzy_reuses_env_variants() {
    let r = ablations::key_policy(6, 36);
    let (exact_ms, exact_cold) = r.exact;
    let (fuzzy_ms, fuzzy_cold) = r.fuzzy;
    // Exact: one cold start per variant (6/36). Fuzzy: one for the first
    // request only.
    assert!((exact_cold - 6.0 / 36.0).abs() < 0.02, "{exact_cold}");
    assert!(fuzzy_cold <= 1.5 / 36.0, "{fuzzy_cold}");
    assert!(fuzzy_ms < exact_ms * 0.7);
}

#[test]
fn ablation_prediction_tradeoff() {
    let r = ablations::prediction();
    // Both modes barely help the first burst (~9 %).
    assert!(r.adaptive[0] < 20.0 && r.reactive[0] < 20.0);
    // Both win big later; reactive wins more but hoards far more runtimes.
    assert!(r.adaptive[1..].iter().all(|&x| x > 45.0));
    assert!(r.reactive[1..].iter().all(|&x| x > 45.0));
    assert!(
        r.reactive_live > r.adaptive_live,
        "reactive {} !> adaptive {}",
        r.reactive_live,
        r.adaptive_live
    );
}

#[test]
fn ablation_retire_fraction_monotone() {
    let rows = ablations::retire_fraction(&[0.05, 0.25, 1.0]);
    // Faster shedding ⇒ worse later-burst latency, fewer retained containers.
    assert!(rows[0].later_burst_mean_ms < rows[1].later_burst_mean_ms);
    assert!(rows[1].later_burst_mean_ms < rows[2].later_burst_mean_ms);
    assert!(rows[0].steady_live > rows[2].steady_live);
}

#[test]
fn ablation_pool_cap_tradeoff() {
    let rows = ablations::pool_cap(&[2, 10, 50], 77);
    // A starved pool thrashes; a generous one converges to the working set.
    assert!(rows[0].cold_fraction > rows[1].cold_fraction);
    assert!(rows[1].cold_fraction >= rows[2].cold_fraction);
    assert!(rows[0].mean_ms > rows[2].mean_ms * 2.0);
    assert!(rows[0].live_at_end <= 2);
}

#[test]
fn ablation_pull_strategies_ordering() {
    let rows = ablations::pull_strategies();
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.strategy.starts_with(name))
            .expect("strategy present")
            .cold_start_s
    };
    let registry = get("registry");
    let p2p = get("p2p");
    let lazy = get("lazy");
    // §III-B: both Alibaba optimizations beat the plain registry pull, and
    // the lazy format is the strongest (boots on a fraction of the bytes).
    assert!(p2p < registry);
    assert!(lazy < p2p);
    assert!(registry / lazy > 3.0);
}

#[test]
fn keepalive_comparison_shape() {
    use hotc_bench::experiments::keepalive;
    let r = keepalive::run(33);
    let cold = r.eval("cold-start");
    let short = r.eval("fixed-keepalive(10m)");
    let long = r.eval("fixed-keepalive(60m)");
    let hybrid = r.eval("hybrid-keepalive");
    let hotc = r.eval("hotc");

    // Everything beats cold-start by an order of magnitude.
    for e in [short, long, hybrid, hotc] {
        assert!(e.mean_ms < cold.mean_ms / 10.0, "{}", e.policy);
    }
    // The §III-B dilemma: the short TTL cold-starts the rare class hard, the
    // long TTL pays for it in pool footprint.
    assert!(short.rare_cold_fraction > 0.5);
    assert!(long.rare_cold_fraction < short.rare_cold_fraction / 2.0);
    assert!(long.mean_live > short.mean_live * 1.3);
    // Hybrid: better rare hit-rate than the short TTL at a footprint well
    // below the long TTL's.
    assert!(hybrid.rare_cold_fraction < short.rare_cold_fraction);
    assert!(hybrid.mean_live < long.mean_live);
    // HotC matches the long TTL's hit rate.
    assert!(hotc.rare_cold_fraction <= long.rare_cold_fraction + 0.02);
    assert!(hotc.cold_fraction <= long.cold_fraction + 0.01);
}

#[test]
fn ablation_contention_slows_tail() {
    let c = hotc_bench::experiments::ablations::contention();
    // Without contention the warm burst is uniform; with it, the tail slows.
    assert!((c.ideal_mean_ms - 64.7).abs() < 2.0, "{}", c.ideal_mean_ms);
    assert!(c.contended_mean_ms > c.ideal_mean_ms);
    assert!(c.contended_p99_ms > c.ideal_mean_ms * 1.3);
}

#[test]
fn ablation_daemon_serialization_shape() {
    let d = hotc_bench::experiments::ablations::daemon_serialization();
    // Serialized creates degrade the cold-start backend super-linearly…
    assert!(d.cold_serialized_ms > d.cold_parallel_ms * 5.0);
    // …while warm reuse never touches the daemon lock.
    assert!(d.hotc_serialized_ms < 100.0, "{}", d.hotc_serialized_ms);
}

#[test]
fn warm_view_staleness_degrades_affinity() {
    let rows = hotc_bench::experiments::cluster::staleness_sweep(4, 12, 21, &[0, 60, 600]);
    assert_eq!(rows.len(), 3);
    // Cold fraction and latency degrade monotonically on the rising edge of
    // the curve. Past ~2 min the curve saturates: placement debits keep the
    // stale view locally consistent between syncs, so once the window
    // exceeds the inter-sync drain time, more staleness changes nothing
    // (before the debit fix, every request in a stale window stampeded to
    // the same believed-warm node, so longer windows kept getting worse).
    assert!(rows[0].cold_fraction <= rows[1].cold_fraction);
    assert!(rows[1].cold_fraction <= rows[2].cold_fraction);
    assert!(rows[2].cold_fraction > rows[0].cold_fraction * 2.0);
    assert!(rows[2].mean_ms > rows[0].mean_ms);
}

#[test]
fn cloudlet_cost_aware_dominates_heterogeneous_cluster() {
    let r = hotc_bench::experiments::cloudlet::run(77);
    let rr = r.eval("round-robin");
    let ra = r.eval("reuse-affinity");
    let ca = r.eval("cost-aware");
    // Cost-aware puts essentially all heavy inference on the server.
    assert!(ca.heavy_on_server > 0.95, "{}", ca.heavy_on_server);
    assert!(ca.heavy_mean_s < ra.heavy_mean_s);
    assert!(ra.heavy_mean_s < rr.heavy_mean_s);
    // And the light class is at worst comparable.
    assert!(ca.light_mean_ms <= ra.light_mean_ms * 1.05);
    // Round-robin wastes 2/3 of heavy requests on the Pis.
    assert!(rr.heavy_on_server < 0.5);
}
