//! The container engine: lifecycle orchestration with per-stage costs.
//!
//! This is the substituted "Docker daemon". Every operation returns the
//! virtual duration it costs (often as a [`CostBreakdown`]), and the caller —
//! a simulation driver or the HotC middleware — advances its clock by that
//! amount. The engine itself never sleeps or reads wall-clock time.

use crate::container::{ContainerConfig, ContainerId, ContainerState};
use crate::costmodel;
use crate::hardware::HardwareProfile;
use crate::host::HostResources;
use crate::image::{ImageId, ImageRegistry, LocalImageStore};
use crate::runtime::LanguageRuntime;
use crate::volume::{VolumeId, VolumeStore};
use simclock::{SimDuration, SimTime};
use std::collections::HashMap;

/// Where the time of a container cold start goes. §III-A instruments exactly
/// this decomposition (the 2→3 "function initiation" segment dominates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Waiting for the container daemon to pick the request up (non-zero
    /// only when daemon serialization is enabled and creates queue up).
    pub daemon_queue: SimDuration,
    /// Registry download of missing layers (zero when cached locally).
    pub image_pull: SimDuration,
    /// Decompressing/unpacking the downloaded layers (zero when cached).
    pub image_unpack: SimDuration,
    /// cgroup/namespace/rootfs allocation.
    pub resource_alloc: SimDuration,
    /// Network mode setup (Fig. 4(c)).
    pub network_setup: SimDuration,
    /// Volume create + bind mount.
    pub volume_mount: SimDuration,
    /// Language runtime cold initialization (Fig. 4(a)).
    pub runtime_init: SimDuration,
    /// Loading the user function code into the runtime.
    pub code_load: SimDuration,
}

impl CostBreakdown {
    /// Total wall (virtual) time of the operation.
    pub fn total(&self) -> SimDuration {
        self.daemon_queue
            + self.image_pull
            + self.image_unpack
            + self.resource_alloc
            + self.network_setup
            + self.volume_mount
            + self.runtime_init
            + self.code_load
    }
}

/// Description of one execution inside a container: what the app does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecWork {
    /// Pure compute time on the reference server at 1.0× (hot runtime).
    pub compute: SimDuration,
    /// App-level initialization compute to run before the handler in *this*
    /// execution (the caller sets it nonzero only for the first execution of
    /// an app in a runtime). Subject to the same penalties as `compute`.
    pub init: SimDuration,
    /// Peak memory of the process.
    pub mem_bytes: u64,
    /// Cores consumed while running.
    pub cpu_cores: f64,
    /// Files written to the container volume.
    pub files_written: u64,
    /// Bytes written to the container volume.
    pub bytes_written: u64,
}

impl ExecWork {
    /// Compute-only work with a small footprint (the paper's random-number
    /// and QR-code functions).
    pub fn light(compute: SimDuration) -> Self {
        ExecWork {
            compute,
            init: SimDuration::ZERO,
            mem_bytes: 16 * 1024 * 1024,
            cpu_cores: 0.5,
            files_written: 2,
            bytes_written: 64 * 1024,
        }
    }
}

/// Result of a completed execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// Virtual latency of the execution (compute × penalties + net overhead).
    /// For a crashing execution, the (shorter) time until the crash.
    pub latency: SimDuration,
    /// Portion of `latency` spent in app-level initialization (the scaled
    /// `ExecWork::init`; zero when the work carried none). Never exceeds
    /// `latency`, even when a crash truncates the execution mid-init.
    pub init_latency: SimDuration,
    /// Whether this was the first execution in a fresh runtime (JIT/cache
    /// penalties applied).
    pub first_exec: bool,
    /// Whether the function process will crash partway through (fault
    /// injection). The container ends up `Stopped` and cannot be reused.
    pub crashed: bool,
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The requested image is not in the registry.
    UnknownImage(ImageId),
    /// No container with that id (or already removed).
    UnknownContainer(ContainerId),
    /// The operation is illegal in the container's current state.
    InvalidState {
        /// The container involved.
        id: ContainerId,
        /// Its current state.
        state: ContainerState,
        /// What the operation needed.
        needed: &'static str,
    },
    /// The configuration failed validation.
    InvalidConfig(String),
    /// An engine bookkeeping invariant was violated (container/volume tables
    /// out of sync). Always a bug in the engine itself — surfaced as a typed
    /// error so a gateway degrades to a failed request instead of a panic.
    Internal(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownImage(id) => write!(f, "unknown image {id}"),
            EngineError::UnknownContainer(id) => write!(f, "unknown container {id}"),
            EngineError::InvalidState { id, state, needed } => {
                write!(f, "container {id} is {state:?}, operation needs {needed}")
            }
            EngineError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            EngineError::Internal(msg) => write!(f, "engine invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[derive(Debug, Clone)]
struct ContainerRecord {
    config: ContainerConfig,
    state: ContainerState,
    volume: VolumeId,
    runtime: LanguageRuntime,
    idle_mem: u64,
    created_at: SimTime,
    last_used: SimTime,
    exec_count: u64,
    // In-flight execution footprint, released at end_exec.
    running_work: Option<ExecWork>,
    // Whether the in-flight execution will crash (fault injection).
    crashing: bool,
    // Fingerprint of `config`, cached at creation: keys this container's
    // fault-injection stream without rehashing on every exec.
    fault_key: u64,
}

/// Fault injection: container processes crash mid-execution with a given
/// probability (deterministic given the seed). A crashed container cannot be
/// reused; the pool must dispose of it.
///
/// Draws come from one independent deterministic stream per container
/// configuration (keyed by a fingerprint of the config), so the crash
/// sequence a given function sees depends only on its *own* execution order
/// — not on how executions of other functions interleave with it. That
/// per-config decomposition is what lets a key-partitioned parallel replay
/// reproduce the sequential crash pattern bit-for-bit.
#[derive(Debug, Clone)]
struct FaultInjector {
    crash_prob: f64,
    seed: u64,
    streams: HashMap<u64, simclock::SimRng>,
}

impl FaultInjector {
    /// Rolls the next crash decision on `key`'s stream: `Some(fraction)` if
    /// this execution crashes (at that uniform point of its runtime).
    fn roll(&mut self, key: u64) -> Option<f64> {
        let seed = self.seed;
        let rng = self
            .streams
            .entry(key)
            .or_insert_with(|| simclock::SimRng::seeded(seed ^ key.rotate_left(17)));
        if rng.chance(self.crash_prob) {
            Some(rng.unit().max(0.05))
        } else {
            None
        }
    }
}

/// Stable fingerprint of a container configuration, used to key fault
/// streams. `ContainerConfig` hashes canonically (its env is a sorted map),
/// so equal configs always share a stream.
fn config_fingerprint(config: &ContainerConfig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = stdshim::FastHasher::default();
    config.hash(&mut h);
    h.finish()
}

/// The simulated container daemon for one host.
///
/// ```
/// use containersim::engine::ExecWork;
/// use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
/// use simclock::{SimDuration, SimTime};
///
/// let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
/// let config = ContainerConfig::bridge(ImageId::parse("golang:1.13"));
/// let (id, cost) = engine.create_container(config, SimTime::ZERO).unwrap();
/// assert!(cost.total() > SimDuration::from_millis(500)); // the cold start
///
/// let outcome = engine
///     .exec(id, ExecWork::light(SimDuration::from_millis(50)), SimTime::ZERO)
///     .unwrap();
/// assert!(outcome.first_exec);
/// engine.cleanup(id, SimTime::from_secs(1)).unwrap(); // ready for reuse
/// ```
#[derive(Debug, Clone)]
pub struct ContainerEngine {
    registry: ImageRegistry,
    store: LocalImageStore,
    volumes: VolumeStore,
    host: HostResources,
    containers: HashMap<ContainerId, ContainerRecord>,
    next_id: u64,
    faults: Option<FaultInjector>,
    cpu_contention: bool,
    /// When enabled, the daemon's serialized setup section: the next create
    /// cannot enter resource allocation before this instant.
    daemon_free_at: Option<SimTime>,
}

impl ContainerEngine {
    /// Creates an engine over a registry and hardware profile, with an empty
    /// local image store.
    pub fn new(registry: ImageRegistry, hw: HardwareProfile) -> Self {
        ContainerEngine {
            registry,
            store: LocalImageStore::new(),
            volumes: VolumeStore::new(),
            host: HostResources::new(hw),
            containers: HashMap::new(),
            next_id: 1,
            faults: None,
            cpu_contention: false,
            daemon_free_at: None,
        }
    }

    /// Enables container-daemon serialization: the kernel-side part of
    /// container creation (cgroup/namespace/rootfs allocation) runs under a
    /// daemon-global lock, so simultaneous cold starts queue behind each
    /// other — the §III-B Alibaba observation that "sudden access burst
    /// might bring ... service not responding". Opt-in so the calibrated
    /// single-container experiments are unaffected.
    pub fn enable_daemon_serialization(&mut self) {
        self.daemon_free_at = Some(SimTime::ZERO);
    }

    /// Enables CPU-contention modelling: when concurrently running
    /// applications oversubscribe the host's cores, each new execution is
    /// slowed proportionally (the "resource competition" latency spikes the
    /// paper observes under parallel and burst flows, §V-D). Opt-in so the
    /// calibrated single-tenant experiments are unaffected.
    pub fn enable_cpu_contention(&mut self) {
        self.cpu_contention = true;
    }

    /// Enables fault injection: each execution crashes with probability
    /// `crash_prob`, deterministically given `seed`.
    pub fn set_fault_injection(&mut self, crash_prob: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&crash_prob),
            "crash probability must be in [0,1]"
        );
        self.faults = Some(FaultInjector {
            crash_prob,
            seed,
            streams: HashMap::new(),
        });
    }

    /// Engine with the default image catalogue, all images pre-pulled (the
    /// paper's §V-A setup: "the images were stored locally").
    pub fn with_local_images(hw: HardwareProfile) -> Self {
        let registry = ImageRegistry::with_default_catalogue();
        let mut engine = ContainerEngine::new(registry, hw);
        let reg = engine.registry.clone();
        engine.store.prefetch_all(&reg, engine.host.hardware());
        engine
    }

    /// The host resource accounting view.
    pub fn host(&self) -> &HostResources {
        &self.host
    }

    /// The image registry.
    pub fn registry(&self) -> &ImageRegistry {
        &self.registry
    }

    /// The volume store (for invariant checks in tests).
    pub fn volumes(&self) -> &VolumeStore {
        &self.volumes
    }

    /// Sets the image distribution strategy for future pulls (§III-B's
    /// Alibaba practices: P2P distribution, lazy image format).
    pub fn set_pull_strategy(&mut self, strategy: crate::image::PullStrategy) {
        self.store.set_strategy(strategy);
    }

    /// Creates AND boots a container: allocate resources, set up networking,
    /// mount a fresh volume, cold-start the language runtime, and load the
    /// function code. On success the container is `Idle` (live, ready to
    /// execute) and the full cold-start [`CostBreakdown`] is returned.
    pub fn create_container(
        &mut self,
        config: ContainerConfig,
        now: SimTime,
    ) -> Result<(ContainerId, CostBreakdown), EngineError> {
        config.validate().map_err(EngineError::InvalidConfig)?;
        let spec = self
            .registry
            .get(&config.image)
            .ok_or_else(|| EngineError::UnknownImage(config.image.clone()))?
            .clone();
        let hw = self.host.hardware().clone();

        let pull = self.store.pull_split(&spec, &hw);
        let (volume, volume_mount) = self.volumes.create_mounted(&hw);
        let resource_alloc = hw.control(costmodel::RESOURCE_ALLOC);
        // Daemon serialization: the allocation section runs under the
        // daemon's global lock; concurrent creates queue behind it.
        let daemon_queue = match &mut self.daemon_free_at {
            Some(free_at) => {
                let start = (*free_at).max(now);
                *free_at = start + resource_alloc;
                start - now
            }
            None => SimDuration::ZERO,
        };
        let breakdown = CostBreakdown {
            daemon_queue,
            image_pull: pull.download,
            image_unpack: pull.unpack,
            resource_alloc,
            network_setup: config.network.setup_cost(&hw),
            volume_mount,
            runtime_init: hw.compute(spec.runtime.cold_init()),
            code_load: hw.control(costmodel::CODE_LOAD),
        };

        let id = ContainerId(self.next_id);
        self.next_id += 1;
        let idle_mem = spec.runtime.idle_mem_bytes();
        self.host.add_live_container(idle_mem);
        self.containers.insert(
            id,
            ContainerRecord {
                fault_key: config_fingerprint(&config),
                config,
                state: ContainerState::Idle,
                volume,
                runtime: spec.runtime,
                idle_mem,
                created_at: now,
                last_used: now,
                exec_count: 0,
                running_work: None,
                crashing: false,
            },
        );
        Ok((id, breakdown))
    }

    /// Begins an execution in an idle container. Returns the virtual latency
    /// of the execution; the caller must call [`Self::end_exec`] after
    /// advancing its clock by that amount.
    pub fn begin_exec(
        &mut self,
        id: ContainerId,
        work: ExecWork,
        now: SimTime,
    ) -> Result<ExecOutcome, EngineError> {
        let hw = self.host.hardware().clone();
        let rec = self
            .containers
            .get_mut(&id)
            .ok_or(EngineError::UnknownContainer(id))?;
        if rec.state != ContainerState::Idle {
            return Err(EngineError::InvalidState {
                id,
                state: rec.state,
                needed: "Idle",
            });
        }
        debug_assert!(rec.state.can_transition_to(ContainerState::Running));
        rec.state = ContainerState::Running;
        rec.last_used = now;
        rec.running_work = Some(work);

        let first_exec = rec.exec_count == 0;
        rec.exec_count += 1;
        let raw = work.compute + work.init;
        let mut compute = hw.compute(raw);
        if first_exec {
            // JIT warm-up (language dependent) plus cold caches/TLB.
            compute = compute
                .mul_f64(rec.runtime.first_exec_penalty())
                .mul_f64(costmodel::COLD_CACHE_PENALTY);
        }
        // CPU oversubscription: if the running apps plus this one exceed the
        // host's cores, this execution runs proportionally slower.
        if self.cpu_contention {
            let demand = self.host.app_cores_in_use() + work.cpu_cores;
            let capacity = self.host.hardware().cores as f64;
            if demand > capacity {
                compute = compute.mul_f64(demand / capacity);
            }
        }
        // The penalty chain scales init and handler compute by the same
        // factor, so init's share of the scaled compute is its raw share.
        let mut init_latency = if work.init.is_zero() {
            SimDuration::ZERO
        } else {
            compute.mul_f64(work.init.as_secs_f64() / raw.as_secs_f64())
        };
        let mut latency = compute + rec.config.network.mode.per_request_overhead();

        // Fault injection: the process may crash partway through, at a
        // uniformly random point of the execution drawn from this config's
        // own deterministic stream.
        let mut crashed = false;
        if let Some(faults) = &mut self.faults {
            if let Some(fraction) = faults.roll(rec.fault_key) {
                crashed = true;
                latency = latency.mul_f64(fraction);
            }
        }
        init_latency = init_latency.min(latency);
        if let Some(rec) = self.containers.get_mut(&id) {
            rec.crashing = crashed;
        }

        self.host.app_started(work.mem_bytes, work.cpu_cores);
        Ok(ExecOutcome {
            latency,
            init_latency,
            first_exec,
            crashed,
        })
    }

    /// Completes an execution begun with [`Self::begin_exec`]: releases the
    /// app's host footprint, records its volume writes, and returns the
    /// container to `Idle` (dirty — it still needs [`Self::cleanup`] before
    /// reuse).
    pub fn end_exec(&mut self, id: ContainerId, now: SimTime) -> Result<(), EngineError> {
        let rec = self
            .containers
            .get_mut(&id)
            .ok_or(EngineError::UnknownContainer(id))?;
        if rec.state != ContainerState::Running {
            return Err(EngineError::InvalidState {
                id,
                state: rec.state,
                needed: "Running",
            });
        }
        let work = rec.running_work.take().ok_or(EngineError::Internal(
            "Running container has no in-flight work",
        ))?;
        let crashed = std::mem::take(&mut rec.crashing);
        rec.state = if crashed {
            ContainerState::Stopped
        } else {
            ContainerState::Idle
        };
        rec.last_used = now;
        let volume = rec.volume;
        self.host.app_finished(work.mem_bytes, work.cpu_cores);
        if crashed {
            // The runtime died mid-write; whatever landed stays until the
            // container is disposed of. The mount is released by the crash.
            self.volumes
                .unmount(volume)
                .map_err(|_| EngineError::Internal("live container volume missing on crash"))?;
        } else {
            self.volumes
                .write(volume, work.files_written, work.bytes_written)
                .map_err(|_| EngineError::Internal("live container volume missing on write"))?;
        }
        Ok(())
    }

    /// Convenience: `begin_exec` + `end_exec` back-to-back, for callers whose
    /// clock advancement is handled elsewhere. Returns the outcome.
    pub fn exec(
        &mut self,
        id: ContainerId,
        work: ExecWork,
        now: SimTime,
    ) -> Result<ExecOutcome, EngineError> {
        let outcome = self.begin_exec(id, work, now)?;
        self.end_exec(id, now + outcome.latency)?;
        Ok(outcome)
    }

    /// Algorithm 2's container cleanup: wipe the used volume and remount a
    /// fresh one so the runtime can be reused. Returns the cleanup cost.
    pub fn cleanup(&mut self, id: ContainerId, now: SimTime) -> Result<SimDuration, EngineError> {
        let hw = self.host.hardware().clone();
        let rec = self
            .containers
            .get_mut(&id)
            .ok_or(EngineError::UnknownContainer(id))?;
        if rec.state != ContainerState::Idle {
            return Err(EngineError::InvalidState {
                id,
                state: rec.state,
                needed: "Idle",
            });
        }
        rec.last_used = now;
        let volume = rec.volume;
        let cost = self
            .volumes
            .wipe_and_remount(volume, &hw)
            .map_err(|_| EngineError::Internal("live container volume missing on cleanup"))?;
        Ok(cost)
    }

    /// Stops and removes a container: terminate the runtime, unmount and
    /// delete its volume (no zombie files), release its live footprint.
    /// Returns the teardown cost.
    pub fn stop_and_remove(
        &mut self,
        id: ContainerId,
        _now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let hw = self.host.hardware().clone();
        let rec = self
            .containers
            .get(&id)
            .ok_or(EngineError::UnknownContainer(id))?;
        let disposable = matches!(
            rec.state,
            ContainerState::Idle | ContainerState::Created | ContainerState::Stopped
        );
        if !disposable {
            return Err(EngineError::InvalidState {
                id,
                state: rec.state,
                needed: "Idle, Created, or Stopped",
            });
        }
        let rec = self.containers.remove(&id).ok_or(EngineError::Internal(
            "container vanished between check and removal",
        ))?;
        if rec.state != ContainerState::Stopped {
            // Stopped (crashed) containers already released their mount.
            self.volumes
                .unmount(rec.volume)
                .map_err(|_| EngineError::Internal("live container volume missing on removal"))?;
        }
        self.volumes
            .delete(rec.volume)
            .map_err(|_| EngineError::Internal("unmounted volume failed to delete"))?;
        self.host.remove_live_container(rec.idle_mem);
        Ok(hw.control(costmodel::CONTAINER_STOP + costmodel::CONTAINER_REMOVE))
    }

    /// Estimates the cold-start cost of a configuration *without* creating
    /// anything — what a cost-aware scheduler consults before placing a
    /// request (pull cost reflects the current local image cache).
    pub fn estimate_cold_start(
        &self,
        config: &ContainerConfig,
    ) -> Result<SimDuration, EngineError> {
        config.validate().map_err(EngineError::InvalidConfig)?;
        let spec = self
            .registry
            .get(&config.image)
            .ok_or_else(|| EngineError::UnknownImage(config.image.clone()))?;
        let hw = self.host.hardware();
        let missing = self.store.missing_bytes(spec);
        let pull = if self.store.has_image(&spec.id) {
            SimDuration::ZERO
        } else {
            // Mirrors the download + unpack split charged by an actual pull.
            hw.io(SimDuration::from_secs_f64(
                missing as f64 / costmodel::PULL_BYTES_PER_SEC as f64,
            )) + hw.io(SimDuration::from_secs_f64(
                missing as f64 / costmodel::UNPACK_BYTES_PER_SEC as f64,
            ))
        };
        Ok(pull
            + hw.control(costmodel::RESOURCE_ALLOC)
            + config.network.setup_cost(hw)
            + hw.control(costmodel::VOLUME_MOUNT)
            + hw.compute(spec.runtime.cold_init())
            + hw.control(costmodel::CODE_LOAD))
    }

    /// Current state of a container (`Removed` if unknown/gone).
    pub fn state(&self, id: ContainerId) -> ContainerState {
        self.containers
            .get(&id)
            .map(|r| r.state)
            .unwrap_or(ContainerState::Removed)
    }

    /// The configuration of a live container.
    pub fn config(&self, id: ContainerId) -> Option<&ContainerConfig> {
        self.containers.get(&id).map(|r| &r.config)
    }

    /// Creation timestamp of a live container.
    pub fn created_at(&self, id: ContainerId) -> Option<SimTime> {
        self.containers.get(&id).map(|r| r.created_at)
    }

    /// Last-used timestamp of a live container.
    pub fn last_used(&self, id: ContainerId) -> Option<SimTime> {
        self.containers.get(&id).map(|r| r.last_used)
    }

    /// Number of executions the container has served.
    pub fn exec_count(&self, id: ContainerId) -> Option<u64> {
        self.containers.get(&id).map(|r| r.exec_count)
    }

    /// Number of live (not removed) containers.
    pub fn live_count(&self) -> usize {
        self.containers.len()
    }

    /// Ids of all live containers, oldest-created first (the eviction order
    /// HotC uses: "the oldest live container is forcibly terminated").
    pub fn live_ids_oldest_first(&self) -> Vec<ContainerId> {
        let mut ids: Vec<_> = self
            // lint:allow(map-iteration, sorted by (created_at, id) below, so hash order cannot reach the result)
            .containers
            .iter()
            .map(|(&id, r)| (r.created_at, id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkConfig, NetworkMode};

    fn engine() -> ContainerEngine {
        ContainerEngine::with_local_images(HardwareProfile::server())
    }

    fn cfg(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    #[test]
    fn cold_start_breakdown_has_all_stages() {
        let mut e = engine();
        let (_, cost) = e
            .create_container(cfg("python:3.8-alpine"), SimTime::ZERO)
            .unwrap();
        assert!(cost.image_pull.is_zero(), "images are pre-pulled");
        assert!(cost.image_unpack.is_zero(), "nothing to unpack when cached");
        assert!(!cost.resource_alloc.is_zero());
        assert!(!cost.network_setup.is_zero());
        assert!(!cost.volume_mount.is_zero());
        assert!(!cost.runtime_init.is_zero());
        assert!(!cost.code_load.is_zero());
        assert_eq!(
            cost.total(),
            cost.resource_alloc
                + cost.network_setup
                + cost.volume_mount
                + cost.runtime_init
                + cost.code_load
        );
    }

    #[test]
    fn uncached_image_pays_pull() {
        let registry = ImageRegistry::with_default_catalogue();
        let mut e = ContainerEngine::new(registry, HardwareProfile::server());
        let (_, cost) = e
            .create_container(cfg("python:3.8"), SimTime::ZERO)
            .unwrap();
        assert!(!cost.image_pull.is_zero());
        assert!(!cost.image_unpack.is_zero());
        // Second container of the same image: cached.
        let (_, cost2) = e
            .create_container(cfg("python:3.8"), SimTime::ZERO)
            .unwrap();
        assert!(cost2.image_pull.is_zero());
        assert!(cost2.image_unpack.is_zero());
    }

    #[test]
    fn unknown_image_rejected() {
        let mut e = engine();
        let err = e
            .create_container(cfg("nope:1.0"), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownImage(_)));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut e = engine();
        let bad = cfg("alpine:3.12").with_network(NetworkConfig::single(NetworkMode::Overlay));
        let err = e.create_container(bad, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn exec_lifecycle_and_first_exec_penalty() {
        let mut e = engine();
        let (id, _) = e
            .create_container(cfg("openjdk:8-jre"), SimTime::ZERO)
            .unwrap();
        let work = ExecWork::light(SimDuration::from_millis(100));

        let first = e.exec(id, work, SimTime::from_secs(1)).unwrap();
        assert!(first.first_exec);
        let second = e.exec(id, work, SimTime::from_secs(2)).unwrap();
        assert!(!second.first_exec);
        // JVM JIT warm-up: first exec substantially slower than second.
        assert!(first.latency > second.latency.mul_f64(1.4));
        assert_eq!(e.exec_count(id), Some(2));
    }

    #[test]
    fn init_split_partitions_latency() {
        let mut e = engine();
        let (id, _) = e
            .create_container(cfg("openjdk:8-jre"), SimTime::ZERO)
            .unwrap();
        let mut work = ExecWork::light(SimDuration::from_millis(60));
        work.init = SimDuration::from_millis(40);
        let first = e.exec(id, work, SimTime::ZERO).unwrap();
        assert!(first.first_exec);
        assert!(!first.init_latency.is_zero());
        assert!(first.init_latency < first.latency);
        // Init keeps its raw share (40 %) of the penalized compute, so its
        // share of total latency is slightly below 40 % (the per-request
        // network overhead is all handler-side).
        let share = first.init_latency.as_secs_f64() / first.latency.as_secs_f64();
        assert!((0.30..0.40).contains(&share), "share={share}");

        // A warm execution carries no init.
        let later = e
            .exec(
                id,
                ExecWork::light(SimDuration::from_millis(60)),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(later.init_latency, SimDuration::ZERO);
    }

    #[test]
    fn begin_exec_requires_idle() {
        let mut e = engine();
        let (id, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::ZERO)
            .unwrap();
        let work = ExecWork::light(SimDuration::from_millis(10));
        e.begin_exec(id, work, SimTime::ZERO).unwrap();
        // Already running.
        let err = e.begin_exec(id, work, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, EngineError::InvalidState { .. }));
        e.end_exec(id, SimTime::from_millis(50)).unwrap();
        assert_eq!(e.state(id), ContainerState::Idle);
    }

    #[test]
    fn end_exec_requires_running() {
        let mut e = engine();
        let (id, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            e.end_exec(id, SimTime::ZERO),
            Err(EngineError::InvalidState { .. })
        ));
    }

    #[test]
    fn exec_writes_land_in_volume_and_cleanup_clears() {
        let mut e = engine();
        let (id, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::ZERO)
            .unwrap();
        let work = ExecWork {
            compute: SimDuration::from_millis(10),
            init: SimDuration::ZERO,
            mem_bytes: 1024,
            cpu_cores: 0.1,
            files_written: 500,
            bytes_written: 1 << 20,
        };
        e.exec(id, work, SimTime::ZERO).unwrap();
        assert_eq!(e.volumes().total_bytes(), 1 << 20);
        let cost = e.cleanup(id, SimTime::from_secs(1)).unwrap();
        assert!(!cost.is_zero());
        assert_eq!(e.volumes().total_bytes(), 0);
    }

    #[test]
    fn stop_and_remove_deletes_volume_and_frees_memory() {
        let mut e = engine();
        let mem0 = e.host().sample().used_mem;
        let (id, _) = e
            .create_container(cfg("openjdk:8-jre"), SimTime::ZERO)
            .unwrap();
        assert!(e.host().sample().used_mem > mem0);
        assert_eq!(e.volumes().len(), 1);

        e.stop_and_remove(id, SimTime::from_secs(1)).unwrap();
        assert_eq!(e.state(id), ContainerState::Removed);
        assert_eq!(e.volumes().len(), 0, "no zombie volumes");
        assert_eq!(e.host().sample().used_mem, mem0);
        assert_eq!(e.live_count(), 0);
    }

    #[test]
    fn cannot_remove_running_container() {
        let mut e = engine();
        let (id, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::ZERO)
            .unwrap();
        e.begin_exec(
            id,
            ExecWork::light(SimDuration::from_millis(5)),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(matches!(
            e.stop_and_remove(id, SimTime::ZERO),
            Err(EngineError::InvalidState { .. })
        ));
    }

    #[test]
    fn oldest_first_ordering() {
        let mut e = engine();
        let (a, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::from_secs(1))
            .unwrap();
        let (b, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::from_secs(3))
            .unwrap();
        let (c, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::from_secs(2))
            .unwrap();
        assert_eq!(e.live_ids_oldest_first(), vec![a, c, b]);
    }

    #[test]
    fn go_cold_over_hot_ratio_matches_fig4() {
        // Fig 4(b): the S3-download program in Go runs 3.06× slower cold
        // (container setup + init + first exec) than hot (exec only).
        let mut e = engine();
        let app = ExecWork::light(SimDuration::from_millis(350));

        let (id, cold_setup) = e
            .create_container(cfg("golang:1.13"), SimTime::ZERO)
            .unwrap();
        let first = e.exec(id, app, SimTime::ZERO).unwrap();
        let cold_total = cold_setup.total() + first.latency;
        let hot = e.exec(id, app, SimTime::from_secs(5)).unwrap();
        let ratio = cold_total.as_secs_f64() / hot.latency.as_secs_f64();
        assert!(
            (2.6..3.6).contains(&ratio),
            "go cold/hot ratio {ratio}, expected ≈3.06"
        );
    }

    #[test]
    fn java_cold_doubles_long_execution() {
        // Fig 4(b): "the cold start even doubles the already long execution
        // in Java" — total cold ≈ 2× hot exec.
        let mut e = engine();
        let app = ExecWork::light(SimDuration::from_millis(1000));
        let (id, cold_setup) = e
            .create_container(cfg("openjdk:8-jre"), SimTime::ZERO)
            .unwrap();
        let first = e.exec(id, app, SimTime::ZERO).unwrap();
        let cold_total = cold_setup.total() + first.latency;
        let hot = e.exec(id, app, SimTime::from_secs(5)).unwrap();
        let ratio = cold_total.as_secs_f64() / hot.latency.as_secs_f64();
        assert!(
            (1.8..2.8).contains(&ratio),
            "java cold/hot ratio {ratio}, expected ≈2×"
        );
    }

    #[test]
    fn unknown_container_errors_everywhere() {
        let mut e = engine();
        let ghost = ContainerId(404);
        let work = ExecWork::light(SimDuration::from_millis(1));
        assert!(matches!(
            e.begin_exec(ghost, work, SimTime::ZERO),
            Err(EngineError::UnknownContainer(_))
        ));
        assert!(matches!(
            e.cleanup(ghost, SimTime::ZERO),
            Err(EngineError::UnknownContainer(_))
        ));
        assert!(matches!(
            e.stop_and_remove(ghost, SimTime::ZERO),
            Err(EngineError::UnknownContainer(_))
        ));
        assert_eq!(e.state(ghost), ContainerState::Removed);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::{HardwareProfile, ImageId, NetworkMode};

    fn cfg() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("alpine:3.12"))
            .with_network(NetworkConfig::single(NetworkMode::None))
    }

    fn work(cores: f64) -> ExecWork {
        ExecWork {
            compute: SimDuration::from_millis(100),
            init: SimDuration::ZERO,
            mem_bytes: 1024,
            cpu_cores: cores,
            files_written: 0,
            bytes_written: 0,
        }
    }

    #[test]
    fn contention_slows_oversubscribed_host() {
        // 20-core server; 50 × 1-core jobs oversubscribe 2.5×.
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        e.enable_cpu_contention();
        let mut ids = Vec::new();
        for i in 0..50 {
            let (id, _) = e.create_container(cfg(), SimTime::from_secs(i)).unwrap();
            ids.push(id);
        }
        let mut latencies = Vec::new();
        for &id in &ids {
            let out = e
                .begin_exec(id, work(1.0), SimTime::from_secs(100))
                .unwrap();
            latencies.push(out.latency);
        }
        // Executions while the host has spare cores run at full speed…
        assert_eq!(latencies[0], latencies[10]);
        // …and once oversubscribed, each additional job runs slower.
        assert!(latencies[30] > latencies[10]);
        assert!(latencies[49] > latencies[30]);
        let ratio = latencies[49].as_secs_f64() / latencies[0].as_secs_f64();
        assert!((2.3..2.7).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn contention_off_by_default() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut latencies = Vec::new();
        for i in 0..50 {
            let (id, _) = e.create_container(cfg(), SimTime::from_secs(i)).unwrap();
            let out = e
                .begin_exec(id, work(1.0), SimTime::from_secs(100))
                .unwrap();
            latencies.push(out.latency);
        }
        assert!(latencies.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn contention_releases_with_finished_apps() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        e.enable_cpu_contention();
        // Saturate the host…
        let mut busy = Vec::new();
        for i in 0..40 {
            let (id, _) = e.create_container(cfg(), SimTime::from_secs(i)).unwrap();
            e.begin_exec(id, work(1.0), SimTime::from_secs(100))
                .unwrap();
            busy.push(id);
        }
        // …then drain it; a fresh execution runs at full speed again.
        for &id in &busy {
            e.end_exec(id, SimTime::from_secs(200)).unwrap();
        }
        let (id, _) = e.create_container(cfg(), SimTime::from_secs(300)).unwrap();
        let out = e
            .begin_exec(id, work(1.0), SimTime::from_secs(300))
            .unwrap();
        // First exec penalty only (native runtime ⇒ ~1.04×).
        assert!(
            out.latency < SimDuration::from_millis(110),
            "{}",
            out.latency
        );
    }
}

#[cfg(test)]
mod daemon_tests {
    use super::*;
    use crate::{HardwareProfile, ImageId};

    fn cfg() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("alpine:3.12"))
    }

    #[test]
    fn serialized_creates_queue_up() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        e.enable_daemon_serialization();
        // Ten simultaneous cold starts at t = 0.
        let queues: Vec<SimDuration> = (0..10)
            .map(|_| {
                let (_, b) = e.create_container(cfg(), SimTime::ZERO).unwrap();
                b.daemon_queue
            })
            .collect();
        assert_eq!(queues[0], SimDuration::ZERO, "first create runs at once");
        // Each subsequent create waits one more allocation slot (420 ms).
        for (i, &q) in queues.iter().enumerate() {
            assert_eq!(q, costmodel::RESOURCE_ALLOC * i as u64, "create {i}");
        }
    }

    #[test]
    fn spaced_creates_do_not_queue() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        e.enable_daemon_serialization();
        for i in 0..5u64 {
            let (_, b) = e
                .create_container(cfg(), SimTime::from_secs(i * 10))
                .unwrap();
            assert_eq!(b.daemon_queue, SimDuration::ZERO, "create {i}");
        }
    }

    #[test]
    fn disabled_by_default() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        for _ in 0..10 {
            let (_, b) = e.create_container(cfg(), SimTime::ZERO).unwrap();
            assert_eq!(b.daemon_queue, SimDuration::ZERO);
        }
    }
}

#[cfg(test)]
mod estimate_tests {
    use super::*;
    use crate::{HardwareProfile, ImageId};

    #[test]
    fn estimate_matches_actual_cold_start() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        let cfg = ContainerConfig::bridge(ImageId::parse("openjdk:8-jre"));
        let estimate = e.estimate_cold_start(&cfg).unwrap();
        let (_, actual) = e.create_container(cfg, SimTime::ZERO).unwrap();
        assert_eq!(estimate, actual.total());
    }

    #[test]
    fn estimate_includes_pull_when_uncached() {
        let registry = ImageRegistry::with_default_catalogue();
        let e = ContainerEngine::new(registry, HardwareProfile::server());
        let cfg = ContainerConfig::bridge(ImageId::parse("tensorflow:1.13-py3"));
        let cold_cache = e.estimate_cold_start(&cfg).unwrap();
        let mut warm = ContainerEngine::with_local_images(HardwareProfile::server());
        let warm_est = warm.estimate_cold_start(&cfg).unwrap();
        assert!(cold_cache > warm_est + SimDuration::from_secs(1));
        let _ = &mut warm;
    }

    #[test]
    fn estimate_does_not_mutate() {
        let e = ContainerEngine::with_local_images(HardwareProfile::server());
        let cfg = ContainerConfig::bridge(ImageId::parse("alpine:3.12"));
        let before = e.live_count();
        e.estimate_cold_start(&cfg).unwrap();
        assert_eq!(e.live_count(), before);
        assert_eq!(e.volumes().len(), 0);
    }
}
