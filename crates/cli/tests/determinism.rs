//! Output-determinism regression test (satellite of ISSUE 4).
//!
//! The lint rule `map-iteration` forbids hash-ordered iteration on the
//! deterministic result path; this test is the runtime counterpart: the demo
//! scenario, run twice in the same process, must produce byte-identical
//! reports and byte-identical `--metrics-out` JSON. Hash containers randomize
//! their seed per process *and* per instantiation, so any hash-order leak
//! into the snapshot (or the report tables) shows up as a diff here.

use hotc_cli::scenario::DEMO_SCENARIO;
use hotc_cli::{run_scenario, Scenario, ScenarioReport};
use stdshim::ToJson;

fn run_once() -> ScenarioReport {
    let scenario = Scenario::parse(DEMO_SCENARIO).expect("demo scenario parses");
    run_scenario(&scenario).expect("demo scenario runs")
}

#[test]
fn demo_scenario_metrics_json_is_byte_identical_across_runs() {
    let a = run_once().metrics.to_json().to_pretty_string();
    let b = run_once().metrics.to_json().to_pretty_string();
    assert!(
        a == b,
        "metrics JSON differs between identical runs:\nfirst {} bytes vs {} bytes",
        a.len(),
        b.len()
    );
    // The snapshot is non-trivial: it must contain sorted stage histograms.
    assert!(a.contains("\"stages\""), "snapshot missing stages section");
}

#[test]
fn demo_scenario_report_is_byte_identical_across_runs() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a.render(false), b.render(false));
    assert_eq!(a.render(true), b.render(true));
}
