//! Parameter analysis: from container configuration to runtime key.
//!
//! §IV-B: "The first step of HotC is to analyze the user command or
//! configuration file to figure out the parameter setting of the container
//! runtime. The parameter includes container images, network configuration,
//! UTS settings, IPC settings, execution options, etc. … The key is the
//! formatted parameter configurations for each container."
//!
//! [`RuntimeKey`] is that formatted form: a canonical string over the
//! configuration fields, so two configurations that mean the same runtime
//! always produce byte-identical keys (environment maps are sorted, port
//! lists are kept sorted by construction).
//!
//! §VII (future work): "We will explore adopting a subset of the available
//! parameters as the key … which reuses an existing available or idle
//! container with a similar configuration and applies the changes."
//! [`KeyPolicy::Fuzzy`] implements that ablation: only the image and network
//! attachment participate in the key; the remaining differences are applied
//! at acquire time for a small reconfiguration cost.

use containersim::container::{IpcMode, UtsMode};
use containersim::ContainerConfig;
use simclock::SimDuration;
use std::fmt::Write as _;

/// Which configuration fields participate in the runtime key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KeyPolicy {
    /// All parameters (the paper's deployed design).
    #[default]
    Exact,
    /// Image + network attachment only (the future-work fuzzy matching);
    /// differing UTS/IPC/exec options are applied on reuse for
    /// [`FUZZY_RECONFIG_COST`].
    Fuzzy,
}

/// Cost of applying configuration deltas (env, limits, hostname) to a reused
/// container under [`KeyPolicy::Fuzzy`]. Far below a cold start.
pub const FUZZY_RECONFIG_COST: SimDuration = SimDuration::from_millis(18);

/// A canonical, formatted runtime key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuntimeKey(String);

impl RuntimeKey {
    /// Formats a configuration into its runtime key under `policy`.
    pub fn from_config(config: &ContainerConfig, policy: KeyPolicy) -> Self {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "img={};net={}", config.image, config.network.mode);
        let _ = write!(
            s,
            ";scope={}",
            match config.network.scope {
                containersim::NetworkScope::SingleHost => "single",
                containersim::NetworkScope::MultiHost => "multi",
            }
        );
        if policy == KeyPolicy::Exact {
            let _ = write!(s, ";ports=");
            for (i, (c, h)) in config.network.published_ports.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}:{h}");
            }
            let _ = write!(
                s,
                ";uts={}",
                match &config.uts {
                    UtsMode::Private => "private".to_string(),
                    UtsMode::Hostname(h) => format!("host:{h}"),
                    UtsMode::Host => "hostns".to_string(),
                }
            );
            let _ = write!(
                s,
                ";ipc={}",
                match config.ipc {
                    IpcMode::Private => "private",
                    IpcMode::Host => "host",
                    IpcMode::Shareable => "shareable",
                }
            );
            let _ = write!(
                s,
                ";cpu={};mem={};priv={}",
                config.exec.cpu_millis, config.exec.mem_limit_bytes, config.exec.privileged
            );
            let _ = write!(s, ";env=");
            // BTreeMap iterates sorted ⇒ canonical.
            for (i, (k, v)) in config.exec.env.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{k}={v}");
            }
            if let Some(cmd) = &config.exec.command {
                let _ = write!(s, ";cmd={cmd}");
            }
        }
        RuntimeKey(s)
    }

    /// The formatted key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for RuntimeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Whether reusing a container that was created with `existing` for a
/// request needing `wanted` requires applying configuration deltas (only
/// possible under [`KeyPolicy::Fuzzy`], where keys can match while configs
/// differ).
pub fn needs_reconfig(existing: &ContainerConfig, wanted: &ContainerConfig) -> bool {
    existing != wanted
}

impl stdshim::ToJson for KeyPolicy {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(
            match self {
                KeyPolicy::Exact => "exact",
                KeyPolicy::Fuzzy => "fuzzy",
            }
            .to_string(),
        )
    }
}

impl stdshim::ToJson for RuntimeKey {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(self.0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::container::ExecOptions;
    use containersim::{ImageId, NetworkConfig, NetworkMode};

    fn base() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"))
    }

    #[test]
    fn identical_configs_same_key() {
        let a = RuntimeKey::from_config(&base(), KeyPolicy::Exact);
        let b = RuntimeKey::from_config(&base(), KeyPolicy::Exact);
        assert_eq!(a, b);
    }

    #[test]
    fn env_order_is_canonical() {
        let a = base().with_exec(ExecOptions::default().with_env("A", "1").with_env("B", "2"));
        let b = base().with_exec(ExecOptions::default().with_env("B", "2").with_env("A", "1"));
        assert_eq!(
            RuntimeKey::from_config(&a, KeyPolicy::Exact),
            RuntimeKey::from_config(&b, KeyPolicy::Exact)
        );
    }

    #[test]
    fn exact_distinguishes_env() {
        let a = base().with_exec(ExecOptions::default().with_env("A", "1"));
        let b = base().with_exec(ExecOptions::default().with_env("A", "2"));
        assert_ne!(
            RuntimeKey::from_config(&a, KeyPolicy::Exact),
            RuntimeKey::from_config(&b, KeyPolicy::Exact)
        );
    }

    #[test]
    fn fuzzy_collapses_env_but_not_image() {
        let a = base().with_exec(ExecOptions::default().with_env("A", "1"));
        let b = base().with_exec(ExecOptions::default().with_env("A", "2"));
        assert_eq!(
            RuntimeKey::from_config(&a, KeyPolicy::Fuzzy),
            RuntimeKey::from_config(&b, KeyPolicy::Fuzzy)
        );
        let other_image = ContainerConfig::bridge(ImageId::parse("golang:1.13"));
        assert_ne!(
            RuntimeKey::from_config(&a, KeyPolicy::Fuzzy),
            RuntimeKey::from_config(&other_image, KeyPolicy::Fuzzy)
        );
    }

    #[test]
    fn network_mode_always_distinguishes() {
        let bridge = base();
        let host = base().with_network(NetworkConfig::single(NetworkMode::Host));
        for policy in [KeyPolicy::Exact, KeyPolicy::Fuzzy] {
            assert_ne!(
                RuntimeKey::from_config(&bridge, policy),
                RuntimeKey::from_config(&host, policy),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn ports_distinguish_exact_keys() {
        let a = base().with_network(NetworkConfig::single(NetworkMode::Bridge).publish(80, 8080));
        let b = base().with_network(NetworkConfig::single(NetworkMode::Bridge).publish(80, 9090));
        assert_ne!(
            RuntimeKey::from_config(&a, KeyPolicy::Exact),
            RuntimeKey::from_config(&b, KeyPolicy::Exact)
        );
    }

    #[test]
    fn key_is_human_readable() {
        let key = RuntimeKey::from_config(&base(), KeyPolicy::Exact);
        let text = key.to_string();
        assert!(text.contains("img=python:3.8-alpine"));
        assert!(text.contains("net=bridge"));
    }

    #[test]
    fn reconfig_detection() {
        let a = base();
        let b = base().with_exec(ExecOptions::default().with_env("X", "1"));
        assert!(!needs_reconfig(&a, &a.clone()));
        assert!(needs_reconfig(&a, &b));
    }
}
