//! lint-fixture-path: crates/core/src/fixture.rs
use std::sync::Mutex;
use std::sync::RwLock;
