//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation isolates one knob of HotC and measures its end-to-end
//! effect (not just predictor error):
//!
//! 1. **Key policy** — exact keys vs the §VII fuzzy subset-matching, on a
//!    workload of same-image functions that differ only in environment.
//! 2. **Prediction** — the full adaptive controller vs reactive pooling
//!    only (`disable_prediction`), on the Fig. 14(b) burst workload.
//! 3. **Scale-down rate** — the `max_retire_fraction` sweep: aggressive
//!    shedding saves memory but forfeits the later-burst wins.
//! 4. **Smoothing coefficient** — α's end-to-end effect on an alternating
//!    workload.
//! 5. **Pool cap** — `max_live` sweep under a multi-tenant load: the
//!    latency/memory trade-off of the 500-container default.
//! 6. **Image distribution** — registry vs P2P vs lazy-format pulls on an
//!    uncached cold start (the §III-B Alibaba practices).

use crate::driver::run_workload;
use crate::experiments::server_gateway;
use containersim::{
    ContainerEngine, HardwareProfile, ImageRegistry, LanguageRuntime, PullStrategy,
};
use faas::gateway::Gateway;
use faas::{AppProfile, FunctionSpec};
use hotc::{ControllerConfig, HotC, HotCConfig, KeyPolicy, PoolLimits};
use metrics_lite::Table;
use simclock::{SimDuration, SimTime};
use workloads::patterns;

/// Result of the key-policy ablation.
pub struct KeyPolicyAblation {
    /// Mean latency (ms) and cold fraction under exact keys.
    pub exact: (f64, f64),
    /// Same under fuzzy keys.
    pub fuzzy: (f64, f64),
}

/// Ablation 1: exact vs fuzzy keys on env-only variants.
pub fn key_policy(variants: usize, requests: usize) -> KeyPolicyAblation {
    let run = |policy: KeyPolicy| {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let provider = HotC::new(HotCConfig {
            key_policy: policy,
            ..Default::default()
        });
        let mut gw = Gateway::new(engine, provider);
        for v in 0..variants {
            let app = AppProfile::qr_code(LanguageRuntime::Python);
            let mut config = app.default_config();
            config.exec.env.insert("VARIANT".into(), v.to_string());
            gw.register(
                FunctionSpec::from_app(app)
                    .named(format!("fn-{v}"))
                    .with_config(config),
            );
        }
        // Rotate through the variants, 5 s apart.
        let workload: Vec<workloads::Arrival> = (0..requests)
            .map(|i| workloads::Arrival {
                at: SimTime::from_secs(5 * i as u64),
                config_id: i % variants,
            })
            .collect();
        let out = run_workload(
            gw,
            &workload,
            |id| format!("fn-{id}"),
            SimDuration::from_secs(30),
        );
        (out.mean_latency().as_millis_f64(), out.cold_fraction())
    };
    KeyPolicyAblation {
        exact: run(KeyPolicy::Exact),
        fuzzy: run(KeyPolicy::Fuzzy),
    }
}

/// Result of the prediction ablation: per-burst latency reductions plus the
/// resource cost each mode pays to get them.
pub struct PredictionAblation {
    /// Reductions (%) per burst with the full adaptive controller.
    pub adaptive: Vec<f64>,
    /// Reductions (%) per burst with prediction disabled (reactive pool).
    pub reactive: Vec<f64>,
    /// Live containers at the end: adaptive sheds, reactive hoards.
    pub adaptive_live: usize,
    /// Reactive pool's final live count.
    pub reactive_live: usize,
}

/// Ablation 2: adaptive control vs reactive pooling on the burst workload.
pub fn prediction() -> PredictionAblation {
    let burst_rounds = [4usize, 8, 12, 16];
    let round = SimDuration::from_secs(30);
    let workload = patterns::burst(8, 10, &burst_rounds, 18, round, 0);
    let apps = [AppProfile::qr_code(LanguageRuntime::Python)];
    let route = |_| "qr-code".to_string();

    let default = run_workload(
        server_gateway(faas::ColdStartAlways::new(), &apps),
        &workload,
        route,
        round,
    );
    let burst_mean = |out: &crate::driver::RunOutcome<_>, br: usize| {
        let vals: Vec<f64> = workload
            .iter()
            .zip(&out.traces)
            .filter(|(a, _)| a.at.duration_since(SimTime::ZERO).div_duration(round) as usize == br)
            .map(|(_, t)| t.total().as_millis_f64())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };

    let mut results = Vec::new();
    let mut live_counts = Vec::new();
    for disable in [false, true] {
        let provider = HotC::new(HotCConfig {
            disable_prediction: disable,
            ..Default::default()
        });
        let out = run_workload(server_gateway(provider, &apps), &workload, route, round);
        let reductions: Vec<f64> = burst_rounds
            .iter()
            .map(|&br| {
                let d = burst_mean(&default, br);
                let h = {
                    let vals: Vec<f64> = workload
                        .iter()
                        .zip(&out.traces)
                        .filter(|(a, _)| {
                            a.at.duration_since(SimTime::ZERO).div_duration(round) as usize == br
                        })
                        .map(|(_, t)| t.total().as_millis_f64())
                        .collect();
                    vals.iter().sum::<f64>() / vals.len() as f64
                };
                (1.0 - h / d) * 100.0
            })
            .collect();
        results.push(reductions);
        live_counts.push(out.gateway.engine().live_count());
    }
    PredictionAblation {
        adaptive: results[0].clone(),
        reactive: results[1].clone(),
        adaptive_live: live_counts[0],
        reactive_live: live_counts[1],
    }
}

/// One row of the retire-fraction sweep.
pub struct RetireRow {
    /// The max_retire_fraction value.
    pub fraction: f64,
    /// Mean latency across burst rounds 2–4 (ms).
    pub later_burst_mean_ms: f64,
    /// Mean live containers between bursts (resource cost proxy).
    pub steady_live: f64,
}

/// Ablation 3: scale-down rate vs burst performance.
pub fn retire_fraction(fractions: &[f64]) -> Vec<RetireRow> {
    let burst_rounds = [4usize, 8, 12, 16];
    let round = SimDuration::from_secs(30);
    let workload = patterns::burst(8, 10, &burst_rounds, 18, round, 0);
    let apps = [AppProfile::qr_code(LanguageRuntime::Python)];
    fractions
        .iter()
        .map(|&fraction| {
            let provider = HotC::new(HotCConfig {
                controller: ControllerConfig {
                    max_retire_fraction: fraction,
                    ..Default::default()
                },
                ..Default::default()
            });
            let out = run_workload(
                server_gateway(provider, &apps),
                &workload,
                |_| "qr-code".to_string(),
                round,
            );
            let later: Vec<f64> = workload
                .iter()
                .zip(&out.traces)
                .filter(|(a, _)| {
                    let r = a.at.duration_since(SimTime::ZERO).div_duration(round) as usize;
                    burst_rounds[1..].contains(&r)
                })
                .map(|(_, t)| t.total().as_millis_f64())
                .collect();
            RetireRow {
                fraction,
                later_burst_mean_ms: later.iter().sum::<f64>() / later.len() as f64,
                steady_live: out.gateway.engine().live_count() as f64,
            }
        })
        .collect()
}

/// One row of the α sweep (end-to-end).
pub struct AlphaRow {
    /// The smoothing coefficient.
    pub alpha: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Cold fraction.
    pub cold_fraction: f64,
}

/// Ablation 4: α's end-to-end effect on an alternating (high/low) workload.
pub fn alpha_sweep(alphas: &[f64]) -> Vec<AlphaRow> {
    let round = SimDuration::from_secs(30);
    // Demand alternates 2 ↔ 14 every round for 24 rounds.
    let mut workload = Vec::new();
    for r in 0..24u64 {
        let n = if r % 2 == 0 { 2 } else { 14 };
        for _ in 0..n {
            workload.push(workloads::Arrival {
                at: SimTime::ZERO + round * r,
                config_id: 0,
            });
        }
    }
    let apps = [AppProfile::qr_code(LanguageRuntime::Python)];
    alphas
        .iter()
        .map(|&alpha| {
            let provider = HotC::new(HotCConfig {
                controller: ControllerConfig {
                    alpha,
                    ..Default::default()
                },
                ..Default::default()
            });
            let out = run_workload(
                server_gateway(provider, &apps),
                &workload,
                |_| "qr-code".to_string(),
                round,
            );
            AlphaRow {
                alpha,
                mean_ms: out.mean_latency().as_millis_f64(),
                cold_fraction: out.cold_fraction(),
            }
        })
        .collect()
}

/// One row of the pool-cap sweep.
pub struct PoolCapRow {
    /// The max_live limit.
    pub max_live: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Cold fraction.
    pub cold_fraction: f64,
    /// Live containers at the end.
    pub live_at_end: usize,
}

/// Ablation 5: pool cap under a multi-tenant Poisson load.
pub fn pool_cap(caps: &[usize], seed: u64) -> Vec<PoolCapRow> {
    let functions = 8;
    let workload = patterns::poisson(3.0, SimDuration::from_secs(400), functions, 1.1, seed);
    caps.iter()
        .map(|&max_live| {
            let engine = ContainerEngine::with_local_images(HardwareProfile::server());
            let provider = HotC::new(HotCConfig {
                limits: PoolLimits::new(max_live, 0.99),
                ..Default::default()
            });
            let mut gw = Gateway::new(engine, provider);
            for f in 0..functions {
                let app = AppProfile::qr_code(LanguageRuntime::Python);
                let mut config = app.default_config();
                config.exec.env.insert("TENANT".into(), f.to_string());
                gw.register(
                    FunctionSpec::from_app(app)
                        .named(format!("fn-{f}"))
                        .with_config(config),
                );
            }
            let out = run_workload(
                gw,
                &workload,
                |id| format!("fn-{id}"),
                SimDuration::from_secs(30),
            );
            PoolCapRow {
                max_live,
                mean_ms: out.mean_latency().as_millis_f64(),
                cold_fraction: out.cold_fraction(),
                live_at_end: out.gateway.engine().live_count(),
            }
        })
        .collect()
}

/// One row of the image-distribution ablation.
pub struct PullRow {
    /// Strategy name.
    pub strategy: &'static str,
    /// Cold start cost including the pull (seconds).
    pub cold_start_s: f64,
}

/// Ablation 6: pull strategies on an uncached cold start.
pub fn pull_strategies() -> Vec<PullRow> {
    let strategies: [(&'static str, PullStrategy); 3] = [
        ("registry", PullStrategy::Registry),
        ("p2p(4 peers)", PullStrategy::P2p { peers: 4 }),
        ("lazy(15% eager)", PullStrategy::Lazy { eager_pct: 15 }),
    ];
    strategies
        .into_iter()
        .map(|(name, strategy)| {
            // Fresh engine with an EMPTY local store: the pull is paid.
            let registry = ImageRegistry::with_default_catalogue();
            let mut engine = ContainerEngine::new(registry, HardwareProfile::server());
            engine.set_pull_strategy(strategy);
            let app = AppProfile::v3_app();
            let (_, breakdown) = engine
                .create_container(app.default_config(), SimTime::ZERO)
                .expect("create with pull");
            PullRow {
                strategy: name,
                cold_start_s: breakdown.total().as_secs_f64(),
            }
        })
        .collect()
}

/// All ablations, rendered.
pub fn render_all() -> String {
    let mut out = String::new();

    let kp = key_policy(6, 36);
    let mut t = Table::new(
        "Ablation 1: runtime-key policy (6 env-variants of one image)",
        &["policy", "mean_ms", "cold_fraction"],
    );
    t.row(&[
        "exact".into(),
        format!("{:.1}", kp.exact.0),
        format!("{:.2}", kp.exact.1),
    ]);
    t.row(&[
        "fuzzy".into(),
        format!("{:.1}", kp.fuzzy.0),
        format!("{:.2}", kp.fuzzy.1),
    ]);
    out.push_str(&t.render());
    out.push_str("(fuzzy keys reuse across env differences for an 18 ms reconfig cost)\n\n");

    let pred = prediction();
    let mut t = Table::new(
        "Ablation 2: adaptive control vs reactive pool (burst reductions %)",
        &["burst", "adaptive", "reactive"],
    );
    for (i, br) in [4, 8, 12, 16].iter().enumerate() {
        t.row(&[
            br.to_string(),
            format!("{:.1}", pred.adaptive[i]),
            format!("{:.1}", pred.reactive[i]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "(the reactive pool wins later bursts only by hoarding: {} live containers at the end \
         vs {} adaptive — prediction trades a little burst capacity for {}x fewer idle runtimes)\n\n",
        pred.reactive_live,
        pred.adaptive_live,
        if pred.adaptive_live > 0 {
            pred.reactive_live / pred.adaptive_live.max(1)
        } else {
            0
        }
    ));

    let rows = retire_fraction(&[0.05, 0.1, 0.25, 0.5, 1.0]);
    let mut t = Table::new(
        "Ablation 3: scale-down rate (max_retire_fraction)",
        &["fraction", "later_burst_mean_ms", "live_at_end"],
    );
    for r in &rows {
        t.row(&[
            format!("{:.2}", r.fraction),
            format!("{:.1}", r.later_burst_mean_ms),
            format!("{:.0}", r.steady_live),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(slow shedding keeps burst capacity warm; 1.0 = shed immediately)\n\n");

    let rows = alpha_sweep(&[0.2, 0.5, 0.8, 0.95]);
    let mut t = Table::new(
        "Ablation 4: smoothing coefficient α, end-to-end (alternating demand)",
        &["alpha", "mean_ms", "cold_fraction"],
    );
    for r in &rows {
        t.row(&[
            format!("{:.2}", r.alpha),
            format!("{:.1}", r.mean_ms),
            format!("{:.3}", r.cold_fraction),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(finding: end-to-end latency is robust to α — the scale-down floor and gradual \
         retirement absorb prediction error; α matters for prediction accuracy, Fig 10(b))\n\n",
    );

    let rows = pool_cap(&[2, 5, 10, 50], 77);
    let mut t = Table::new(
        "Ablation 5: pool cap (max_live) under 8-tenant Poisson load",
        &["max_live", "mean_ms", "cold_fraction", "live_at_end"],
    );
    for r in &rows {
        t.row(&[
            r.max_live.to_string(),
            format!("{:.1}", r.mean_ms),
            format!("{:.3}", r.cold_fraction),
            r.live_at_end.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let rows = pull_strategies();
    let mut t = Table::new(
        "Ablation 6: image distribution on an uncached v3-app cold start (§III-B)",
        &["strategy", "cold_start_s"],
    );
    for r in &rows {
        t.row(&[r.strategy.to_string(), format!("{:.2}", r.cold_start_s)]);
    }
    out.push_str(&t.render());
    out.push_str("(paper cites Alibaba's P2P distribution and partial-download image format)\n\n");

    let c = contention();
    let mut t = Table::new(
        "Ablation 7: CPU oversubscription (60 simultaneous warm requests, 20 cores)",
        &["model", "burst_mean_ms", "burst_p99_ms"],
    );
    t.row(&[
        "ideal (no contention)".into(),
        format!("{:.1}", c.ideal_mean_ms),
        "-".into(),
    ]);
    t.row(&[
        "contended".into(),
        format!("{:.1}", c.contended_mean_ms),
        format!("{:.1}", c.contended_p99_ms),
    ]);
    out.push_str(&t.render());
    out.push_str("(the §V-D latency spikes under parallel/burst flows come from exactly this)\n\n");

    let d = daemon_serialization();
    let mut t = Table::new(
        "Ablation 8: daemon-serialized creates under a 40-request burst",
        &["backend", "daemon", "burst_mean_ms"],
    );
    t.row(&[
        "cold-start".into(),
        "parallel".into(),
        format!("{:.0}", d.cold_parallel_ms),
    ]);
    t.row(&[
        "cold-start".into(),
        "serialized".into(),
        format!("{:.0}", d.cold_serialized_ms),
    ]);
    t.row(&[
        "hotc (warm)".into(),
        "serialized".into(),
        format!("{:.0}", d.hotc_serialized_ms),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "(§III-B: burst cold starts queue behind the daemon; warm reuse never enters it)\n",
    );
    out
}

/// Result of the contention ablation.
pub struct ContentionAblation {
    /// Mean latency of the oversubscribing burst without contention (ms).
    pub ideal_mean_ms: f64,
    /// Mean latency with CPU contention modelled (ms).
    pub contended_mean_ms: f64,
    /// p99 with contention (the §V-D "slight spike of latency").
    pub contended_p99_ms: f64,
}

/// Ablation 7: CPU oversubscription under a simultaneous burst (60 × 0.5
/// cores on a 20-core host), with runtimes pre-warmed so only execution-time
/// effects show.
pub fn contention() -> ContentionAblation {
    let run = |contended: bool| {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        if contended {
            engine.enable_cpu_contention();
        }
        // Reactive pool (no adaptive resizing) so the burst is 100 % warm
        // and the only variable is CPU contention.
        let provider = HotC::new(HotCConfig {
            disable_prediction: true,
            ..Default::default()
        });
        let mut gw = Gateway::new(engine, provider);
        gw.register_app(AppProfile::qr_code(LanguageRuntime::Python));
        // One warm-up round so the burst itself is all-warm.
        let warmup = patterns::burst(60, 1, &[], 1, SimDuration::from_secs(30), 0);
        let burst_round = patterns::burst(60, 1, &[], 1, SimDuration::from_secs(30), 0);
        let mut workload = warmup;
        let offset = SimDuration::from_secs(60);
        workload.extend(burst_round.into_iter().map(|mut a| {
            a.at += offset;
            a
        }));
        let out = run_workload(
            gw,
            &workload,
            |_| "qr-code".to_string(),
            SimDuration::from_secs(30),
        );
        let burst_lat: Vec<f64> = out.traces[60..]
            .iter()
            .map(|t| t.total().as_millis_f64())
            .collect();
        let mean = burst_lat.iter().sum::<f64>() / burst_lat.len() as f64;
        let mut sorted = burst_lat.clone();
        sorted.sort_by(f64::total_cmp);
        let p99 = sorted[(0.99 * sorted.len() as f64) as usize - 1];
        (mean, p99)
    };
    let (ideal_mean_ms, _) = run(false);
    let (contended_mean_ms, contended_p99_ms) = run(true);
    ContentionAblation {
        ideal_mean_ms,
        contended_mean_ms,
        contended_p99_ms,
    }
}

/// Result of the daemon-serialization ablation.
pub struct DaemonAblation {
    /// Burst mean latency, cold-start backend, creates unserialized (ms).
    pub cold_parallel_ms: f64,
    /// Burst mean latency, cold-start backend, daemon-serialized (ms).
    pub cold_serialized_ms: f64,
    /// Burst mean latency, HotC (warm pool), daemon-serialized (ms).
    pub hotc_serialized_ms: f64,
}

/// Ablation 8: daemon-serialized creates under a 40-request burst. With
/// every cold start queueing behind the daemon's allocation lock, the
/// cold-start backend degrades super-linearly — and HotC sidesteps the queue
/// entirely because warm reuse never enters the daemon.
pub fn daemon_serialization() -> DaemonAblation {
    let burst_workload = patterns::burst(40, 1, &[], 2, SimDuration::from_secs(60), 0);
    fn mean_of_second_round<P: faas::RuntimeProvider>(out: &crate::driver::RunOutcome<P>) -> f64 {
        let lat: Vec<f64> = out.traces[40..]
            .iter()
            .map(|t| t.total().as_millis_f64())
            .collect();
        lat.iter().sum::<f64>() / lat.len() as f64
    }
    let run = |serialize: bool, hotc: bool| {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        if serialize {
            engine.enable_daemon_serialization();
        }
        if hotc {
            let mut gw = Gateway::new(engine, HotC::with_defaults());
            gw.register_app(AppProfile::qr_code(LanguageRuntime::Python));
            let out = run_workload(
                gw,
                &burst_workload,
                |_| "qr-code".to_string(),
                SimDuration::from_secs(60),
            );
            mean_of_second_round(&out)
        } else {
            let mut gw = Gateway::new(engine, faas::ColdStartAlways::new());
            gw.register_app(AppProfile::qr_code(LanguageRuntime::Python));
            let out = run_workload(
                gw,
                &burst_workload,
                |_| "qr-code".to_string(),
                SimDuration::from_secs(60),
            );
            mean_of_second_round(&out)
        }
    };
    DaemonAblation {
        cold_parallel_ms: run(false, false),
        cold_serialized_ms: run(true, false),
        hotc_serialized_ms: run(true, true),
    }
}
