//! Predictor micro-benchmarks: the per-control-step CPU cost of Eq. 1,
//! Eq. 2, and the combined model (runs once per runtime type per interval).

use hotc_bench::Harness;
use predictor::{EsMarkov, ExponentialSmoothing, MarkovChain, Predictor, RegionPartition};
use std::hint::black_box;

fn demand_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = if (i / 10) % 2 == 0 { 8.0 } else { 19.0 };
            base + (i % 3) as f64
        })
        .collect()
}

fn bench_smoothing_step(h: &mut Harness) {
    let mut es = ExponentialSmoothing::paper_default();
    let mut i = 0u64;
    h.bench("es_observe_predict", || {
        i += 1;
        es.observe((i % 23) as f64);
        black_box(es.predict())
    });
}

fn bench_markov_fit(h: &mut Harness) {
    let series = demand_series(256);
    h.bench("markov_fit_256", || {
        black_box(MarkovChain::fit(black_box(&series), 6))
    });
}

fn bench_markov_kstep(h: &mut Harness) {
    let chain = MarkovChain::fit(&demand_series(256), 6);
    h.bench("markov_4step_matrix", || black_box(chain.k_step_matrix(4)));
}

fn bench_combined_step(h: &mut Harness) {
    // The actual controller workload: one observe+predict per interval,
    // including the windowed chain rebuild.
    let mut p = EsMarkov::paper_default();
    for x in demand_series(64) {
        p.observe(x);
    }
    let mut i = 0u64;
    h.bench("es_markov_observe_predict", || {
        i += 1;
        p.observe((8 + (i % 12)) as f64);
        black_box(p.predict())
    });
}

fn bench_partition_lookup(h: &mut Harness) {
    let partition = RegionPartition::new(0.0, 100.0, 8);
    let mut x = 0.0f64;
    h.bench("region_state_of", || {
        x = (x + 13.7) % 120.0;
        black_box(partition.state_of(x))
    });
}

fn main() {
    let mut h = Harness::new("predictor");
    bench_smoothing_step(&mut h);
    bench_markov_fit(&mut h);
    bench_markov_kstep(&mut h);
    bench_combined_step(&mut h);
    bench_partition_lookup(&mut h);
    h.finish();
}
