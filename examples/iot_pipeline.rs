//! The paper's §II motivating scenarios (Fig. 3), built from *custom*
//! application profiles — no library changes needed:
//!
//! * Fig. 3(a): a cloud image-processing service — upload triggers
//!   compression, then watermarking, then persistence.
//! * Fig. 3(b): a self-driving edge pipeline on an AWS-Greengrass-like
//!   device — static object recognition (traffic lights/signs) and dynamic
//!   object recognition (vehicles/pedestrians) run locally on every frame
//!   batch; only summaries go to the cloud.
//!
//! ```text
//! cargo run --example iot_pipeline
//! ```

use containersim::engine::ExecWork;
use hotc_repro::prelude::*;

/// Custom app: JPEG compression of an uploaded photo.
fn compress_app() -> AppProfile {
    AppProfile {
        name: "img-compress",
        image: ImageId::parse("python:3.8-alpine"),
        app_init: SimDuration::from_millis(120), // codec tables, buffers
        work: ExecWork {
            compute: SimDuration::from_millis(180),
            mem_bytes: 96 * 1024 * 1024,
            init: SimDuration::ZERO,
            cpu_cores: 1.0,
            files_written: 2,
            bytes_written: 900 * 1024,
        },
    }
}

/// Custom app: watermark overlay on the compressed image.
fn watermark_app() -> AppProfile {
    AppProfile {
        name: "img-watermark",
        image: ImageId::parse("python:3.8-alpine"),
        app_init: SimDuration::from_millis(60),
        work: ExecWork {
            compute: SimDuration::from_millis(70),
            mem_bytes: 48 * 1024 * 1024,
            init: SimDuration::ZERO,
            cpu_cores: 0.5,
            files_written: 1,
            bytes_written: 950 * 1024,
        },
    }
}

/// Custom app: object recognition over a camera frame batch (edge).
fn recognition_app(name: &'static str, compute_ms: u64) -> AppProfile {
    AppProfile {
        name,
        image: ImageId::parse("tensorflow:1.13-py3"),
        app_init: SimDuration::from_millis(700), // model load
        work: ExecWork {
            compute: SimDuration::from_millis(compute_ms),
            mem_bytes: 700 * 1024 * 1024,
            init: SimDuration::ZERO,
            cpu_cores: 3.0,
            files_written: 1,
            bytes_written: 64 * 1024,
        },
    }
}

/// Registers an app under its own runtime *type* (distinct env var), so two
/// apps sharing an image don't thrash one pooled runtime by alternating
/// their app-level initialization.
fn register_isolated<P: RuntimeProvider>(gw: &mut Gateway<P>, app: AppProfile) {
    let mut config = app.default_config();
    config.exec.env.insert("APP".into(), app.name.into());
    let spec = faas::FunctionSpec::from_app(app).with_config(config);
    gw.register(spec);
}

fn cloud_image_service() {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, HotC::with_defaults());
    register_isolated(&mut gw, compress_app());
    register_isolated(&mut gw, watermark_app());

    let mut table = Table::new(
        "Fig 3(a): cloud image service — 6 uploads through compress → watermark",
        &[
            "upload",
            "compress_ms",
            "watermark_ms",
            "pipeline_ms",
            "cold_steps",
        ],
    );
    let mut now = SimTime::ZERO;
    for upload in 0..6 {
        let c = gw.handle("img-compress", now).expect("compress");
        let w = gw
            .handle("img-watermark", c.t6_gateway_out)
            .expect("watermark");
        let pipeline = w.t6_gateway_out - c.t1_gateway_in;
        table.row(&[
            upload.to_string(),
            format!("{:.0}", c.total().as_millis_f64()),
            format!("{:.0}", w.total().as_millis_f64()),
            format!("{:.0}", pipeline.as_millis_f64()),
            (c.cold as u32 + w.cold as u32).to_string(),
        ]);
        now = w.t6_gateway_out + SimDuration::from_secs(20);
        gw.tick(now).expect("tick");
    }
    println!("{}", table.render());
}

fn edge_vehicle_pipeline() {
    // A Jetson-class device in the vehicle, per Fig 3(b).
    let engine = ContainerEngine::with_local_images(HardwareProfile::jetson_tx2());
    let mut gw = Gateway::new(engine, HotC::with_defaults());
    register_isolated(&mut gw, recognition_app("static-objects", 90));
    register_isolated(&mut gw, recognition_app("dynamic-objects", 140));

    let mut table = Table::new(
        "Fig 3(b): in-vehicle recognition — 8 frame batches, both detectors per batch",
        &["batch", "static_ms", "dynamic_ms", "cold"],
    );
    let mut now = SimTime::ZERO;
    for batch in 0..8 {
        let s = gw.handle("static-objects", now).expect("static");
        let d = gw
            .handle("dynamic-objects", s.t6_gateway_out)
            .expect("dynamic");
        table.row(&[
            batch.to_string(),
            format!("{:.0}", s.total().as_millis_f64()),
            format!("{:.0}", d.total().as_millis_f64()),
            (s.cold || d.cold).to_string(),
        ]);
        now = d.t6_gateway_out + SimDuration::from_millis(500);
    }
    println!("{}", table.render());
    println!(
        "after the first frame batch both detectors run from hot runtimes — the model\n\
         load ({} ms at Jetson speed) and container setup are paid exactly once",
        (recognition_app("x", 0).app_init.as_millis_f64() * 4.0) as u64
    );
}

fn main() {
    cloud_image_service();
    println!();
    edge_vehicle_pipeline();
}
