//! Run-time core of the model checker: virtual threads, the baton
//! scheduler, and op execution against the weak-memory store model.
//!
//! Virtual threads are real OS threads, but at most one runs at a time: a
//! thread arriving at an atomic operation registers it as *pending*,
//! chooses the next thread to run (consulting the exploration prefix via
//! [`RunState::choose`]), and parks until the baton comes back. The op
//! executes when its thread is granted the baton, so the scheduler decides
//! exactly which pending operation happens next — every interleaving of
//! schedule points is reachable.
//!
//! Scheduling choices are pruned two ways (DESIGN.md §7.3): a *preemption
//! bound* (switching away from a still-runnable thread costs one preemption;
//! at the bound the thread must continue) and *sleep sets* (after exploring
//! thread `t` at a choice node, sibling branches keep `t` asleep until some
//! dependent op — same location, at least one write — executes). Both are
//! bug-finding heuristics, not completeness proofs, and the combination can
//! skip schedules near the bound.
//!
//! A panic in a virtual thread is the violation signal: the run records the
//! panic message plus the executed-op trace, then flips into *drain mode*
//! where every thread runs to completion without further scheduling (ops
//! read/write the newest store only) so the OS threads can be joined.

use super::clock::VClock;
use super::mem::Memory;
use crate::hash::FastMap;
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The read-modify-write flavours the facade needs.
#[derive(Debug, Clone, Copy)]
pub enum RmwKind {
    /// `fetch_add`
    Add(u64),
    /// `fetch_sub` (wrapping, like the hardware op)
    Sub(u64),
    /// `fetch_and`
    And(u64),
    /// `fetch_or`
    Or(u64),
    /// `fetch_max`
    Max(u64),
    /// `swap`
    Swap(u64),
}

impl RmwKind {
    fn apply(self, old: u64) -> u64 {
        match self {
            RmwKind::Add(v) => old.wrapping_add(v),
            RmwKind::Sub(v) => old.wrapping_sub(v),
            RmwKind::And(v) => old & v,
            RmwKind::Or(v) => old | v,
            RmwKind::Max(v) => old.max(v),
            RmwKind::Swap(v) => v,
        }
    }

    fn name(self) -> &'static str {
        match self {
            RmwKind::Add(_) => "fetch_add",
            RmwKind::Sub(_) => "fetch_sub",
            RmwKind::And(_) => "fetch_and",
            RmwKind::Or(_) => "fetch_or",
            RmwKind::Max(_) => "fetch_max",
            RmwKind::Swap(_) => "swap",
        }
    }
}

/// A pending operation at a schedule point. `addr`/`init` identify and
/// lazily register the memory location (keyed by the atomic's address for
/// the duration of one execution; labels are assigned in first-touch order,
/// which is deterministic under replay).
#[derive(Debug, Clone)]
pub(super) enum Op {
    Start,
    Spawn {
        child: usize,
    },
    Join {
        child: usize,
    },
    Load {
        addr: usize,
        init: u64,
        o: Ordering,
    },
    Store {
        addr: usize,
        init: u64,
        value: u64,
        o: Ordering,
    },
    Rmw {
        addr: usize,
        init: u64,
        kind: RmwKind,
        o: Ordering,
    },
    CmpEx {
        addr: usize,
        init: u64,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    },
    OnceInit {
        addr: usize,
    },
}

impl Op {
    /// The memory location this op touches, if any.
    fn addr(&self) -> Option<usize> {
        match *self {
            Op::Start | Op::Spawn { .. } | Op::Join { .. } => None,
            Op::Load { addr, .. }
            | Op::Store { addr, .. }
            | Op::Rmw { addr, .. }
            | Op::CmpEx { addr, .. }
            | Op::OnceInit { addr } => Some(addr),
        }
    }

    /// Whether this op writes its location (sleep-set dependence).
    fn is_write(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::Rmw { .. } | Op::CmpEx { .. } | Op::OnceInit { .. }
        )
    }
}

/// What an executed op returned to its caller.
#[derive(Debug, Clone, Copy)]
pub(super) enum OpResult {
    Unit,
    Value(u64),
    /// CAS: `(observed, success)`.
    Cas(u64, bool),
}

/// What kind of nondeterministic choice a schedule-tree node records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Which thread runs next.
    Thread,
    /// Which visible store a load reads.
    Value,
}

/// One node of the DFS schedule tree: `n` options, currently exploring
/// option `cur`.
#[derive(Debug, Clone, Copy)]
pub struct NodeRec {
    /// Number of options at this choice point.
    pub n: usize,
    /// Option being explored in the current execution.
    pub cur: usize,
    /// Choice kind (determinism cross-check during replay).
    pub kind: NodeKind,
}

struct ThreadSt {
    vc: VClock,
    pending: Option<Op>,
    finished: bool,
    sleeping: bool,
}

/// Everything one execution accumulates, handed back to the explorer.
pub(super) struct RunOutcome {
    pub nodes: Vec<NodeRec>,
    pub violation: Option<String>,
    pub trace: Vec<String>,
    pub pruned: bool,
    pub det_mismatch: Option<String>,
}

pub(super) struct RunState {
    threads: Vec<ThreadSt>,
    active: Option<usize>,
    draining: bool,
    pruned: bool,
    violation: Option<String>,
    live: usize,
    preemptions: usize,
    bound: usize,
    mem: Memory,
    addr_to_loc: FastMap<usize, usize>,
    nodes: Vec<NodeRec>,
    depth: usize,
    trace: Vec<String>,
    det_mismatch: Option<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl RunState {
    /// Consume one choice with `n` options; returns the option index. The
    /// first visit to a node always takes option 0; replays and sibling
    /// visits follow the prescribed `nodes` prefix.
    fn choose(&mut self, n: usize, kind: NodeKind) -> usize {
        if n <= 1 {
            return 0;
        }
        let d = self.depth;
        self.depth += 1;
        if d < self.nodes.len() {
            let node = self.nodes[d];
            if node.n != n || node.kind != kind {
                self.det_mismatch = Some(format!(
                    "schedule replay diverged at depth {d}: recorded {:?}×{} vs replayed {:?}×{n}",
                    node.kind, node.n, kind
                ));
                return node.cur.min(n - 1);
            }
            node.cur
        } else {
            self.nodes.push(NodeRec { n, cur: 0, kind });
            0
        }
    }

    fn loc_of(&mut self, addr: usize, init: u64) -> usize {
        if let Some(&l) = self.addr_to_loc.get(&addr) {
            return l;
        }
        let l = self.mem.register(init);
        self.addr_to_loc.insert(addr, l);
        l
    }

    /// Threads that could execute their pending op right now (ignoring
    /// sleep sets): started, unfinished, and not blocked on an unfinished
    /// join target.
    fn executable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| {
                let th = &self.threads[t];
                if th.finished {
                    return false;
                }
                match th.pending {
                    None => false,
                    Some(Op::Join { child }) => self.threads[child].finished,
                    Some(_) => true,
                }
            })
            .collect()
    }

    /// Wake sleeping threads whose pending op is dependent on an executed op
    /// at `addr` (same location, at least one of the two writes).
    fn wake_dependent(&mut self, addr: usize, executed_write: bool) {
        for th in &mut self.threads {
            if th.sleeping {
                if let Some(op) = &th.pending {
                    if op.addr() == Some(addr) && (executed_write || op.is_write()) {
                        th.sleeping = false;
                    }
                }
            }
        }
    }
}

/// State shared between the explorer (main thread) and all virtual threads
/// of one execution.
pub(super) struct RunShared {
    state: Mutex<RunState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<RunShared>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current virtual-thread context, or returns `None` when
/// the calling OS thread is not inside a model execution (the facade then
/// falls back to the real atomic).
pub(super) fn with_run<R>(f: impl FnOnce(&Arc<RunShared>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(s, t)| f(s, *t)))
}

impl RunShared {
    pub(super) fn new(nodes: Vec<NodeRec>, bound: usize) -> RunShared {
        RunShared {
            state: Mutex::new(RunState {
                threads: Vec::new(),
                active: None,
                draining: false,
                pruned: false,
                violation: None,
                live: 0,
                preemptions: 0,
                bound,
                mem: Memory::default(),
                addr_to_loc: FastMap::default(),
                nodes,
                depth: 0,
                trace: Vec::new(),
                det_mismatch: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RunState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Launches the root virtual thread (tid 0) running `f`.
    pub(super) fn start_root(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) {
        let mut st = self.lock();
        debug_assert!(st.threads.is_empty(), "start_root on a used run");
        st.threads.push(ThreadSt {
            vc: VClock::new(),
            pending: Some(Op::Start),
            finished: false,
            sleeping: false,
        });
        st.live = 1;
        st.active = Some(0);
        let shared = Arc::clone(self);
        let handle = std::thread::spawn(move || thread_body(shared, 0, f));
        st.os_handles.push(handle);
    }

    /// Registers a child virtual thread (inheriting the parent's clock) and
    /// launches its OS thread. The caller must follow with the parent's
    /// `Op::Spawn` schedule point.
    pub(super) fn spawn_child(
        self: &Arc<Self>,
        parent: usize,
        f: impl FnOnce() + Send + 'static,
    ) -> usize {
        let mut st = self.lock();
        let child = st.threads.len();
        let vc = st.threads[parent].vc.clone();
        st.threads.push(ThreadSt {
            vc,
            pending: Some(Op::Start),
            finished: false,
            sleeping: false,
        });
        st.live += 1;
        let shared = Arc::clone(self);
        let handle = std::thread::spawn(move || thread_body(shared, child, f));
        st.os_handles.push(handle);
        child
    }

    /// The per-schedule-point protocol: register `op` as pending, pick the
    /// next thread to run, park until granted, then execute the op.
    pub(super) fn atomic_op(&self, me: usize, op: Op) -> OpResult {
        let mut st = self.lock();
        if st.draining {
            return self.exec_drain(st, me, op);
        }
        st.threads[me].pending = Some(op);
        self.select_next(&mut st, Some(me));
        self.await_baton_and_exec(st, me)
    }

    /// Parks until `me` holds the baton (or drain mode starts), then
    /// executes `me`'s pending op. Used by `atomic_op` and for the initial
    /// `Op::Start` a parent registered on `me`'s behalf.
    pub(super) fn await_baton_and_exec(
        &self,
        mut st: MutexGuard<'_, RunState>,
        me: usize,
    ) -> OpResult {
        loop {
            if st.draining {
                let op = match st.threads[me].pending.take() {
                    Some(op) => op,
                    None => return OpResult::Unit,
                };
                return self.exec_drain(st, me, op);
            }
            if st.active == Some(me) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let op = match st.threads[me].pending.take() {
            Some(op) => op,
            None => return OpResult::Unit,
        };
        self.exec(&mut st, me, op)
    }

    pub(super) fn initial_park(&self, me: usize) {
        let st = self.lock();
        self.await_baton_and_exec(st, me);
    }

    /// Thread `me` finished (returned or panicked). Hands the baton on, or
    /// records the violation and flips to drain mode.
    pub(super) fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[me].finished = true;
        st.threads[me].pending = None;
        st.threads[me].sleeping = false;
        st.live -= 1;
        if let Some(msg) = panic_msg {
            // First panic outside drain mode is the violation; later ones
            // are fallout from running past it.
            if !st.draining && st.violation.is_none() {
                st.violation = Some(msg);
                st.draining = true;
                st.active = None;
            }
        } else if !st.draining {
            self.select_next(&mut st, Some(me));
        }
        self.cv.notify_all();
    }

    /// Blocks the explorer until every virtual thread finished, then joins
    /// the OS threads and returns the execution's outcome.
    pub(super) fn wait_outcome(&self) -> RunOutcome {
        let handles = {
            let mut st = self.lock();
            while st.live > 0 {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            // The virtual thread caught its own panic; OS-join cannot fail.
            let _ = h.join();
        }
        let mut st = self.lock();
        RunOutcome {
            nodes: std::mem::take(&mut st.nodes),
            violation: st.violation.take(),
            trace: std::mem::take(&mut st.trace),
            pruned: st.pruned,
            det_mismatch: st.det_mismatch.take(),
        }
    }

    /// Picks which pending op runs next. `prev` is the thread that just
    /// executed (preemption accounting) or just finished.
    fn select_next(&self, st: &mut RunState, prev: Option<usize>) {
        if st.draining {
            return;
        }
        let executable = st.executable();
        if executable.is_empty() {
            if st.live > 0 {
                // Only join cycles could get here; the JoinHandle API makes
                // them unconstructible. Record loudly rather than hang.
                st.violation = Some("deadlock: all live threads blocked".to_string());
            }
            st.draining = st.live > 0;
            st.active = None;
            self.cv.notify_all();
            return;
        }
        let mut options: Vec<usize> = executable
            .iter()
            .copied()
            .filter(|&t| !st.threads[t].sleeping)
            .collect();
        if options.is_empty() {
            // Every runnable thread is in the sleep set: this branch is
            // equivalent to one already explored. Finish it cheaply.
            st.pruned = true;
            st.draining = true;
            st.active = None;
            self.cv.notify_all();
            return;
        }
        let prev_runnable = prev.is_some_and(|p| options.contains(&p));
        let chosen = if prev_runnable && st.preemptions >= st.bound {
            // lint:allow(unwrap, guarded by prev_runnable on the preceding line)
            prev.expect("prev_runnable implies prev")
        } else {
            options.sort_unstable();
            if let Some(p) = prev {
                if let Some(pos) = options.iter().position(|&t| t == p) {
                    options.remove(pos);
                    options.insert(0, p);
                }
            }
            let c = st.choose(options.len(), NodeKind::Thread);
            // Sibling options explored in earlier branches of this node go
            // to sleep for this branch.
            for &t in &options[..c] {
                st.threads[t].sleeping = true;
            }
            options[c]
        };
        if prev_runnable && Some(chosen) != prev {
            st.preemptions += 1;
        }
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Executes `op` for thread `me` against the memory model, recording the
    /// trace line and waking dependent sleepers.
    fn exec(&self, st: &mut RunState, me: usize, op: Op) -> OpResult {
        let seq = st.trace.len() + 1;
        let (result, line) = match op {
            Op::Start => {
                st.threads[me].vc.tick(me);
                (OpResult::Unit, format!("t{me} starts"))
            }
            Op::Spawn { child } => {
                st.threads[me].vc.tick(me);
                (OpResult::Unit, format!("t{me} spawns t{child}"))
            }
            Op::Join { child } => {
                let child_vc = st.threads[child].vc.clone();
                st.threads[me].vc.tick(me);
                st.threads[me].vc.join(&child_vc);
                (OpResult::Unit, format!("t{me} joins t{child}"))
            }
            Op::Load { addr, init, o } => {
                let loc = st.loc_of(addr, init);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                vc.tick(me);
                let mut cands = st.mem.candidates(me, loc, &vc);
                // lint:allow(atomic-seqcst, interpreting the op's declared ordering, not performing a fence)
                if o == Ordering::SeqCst {
                    cands.truncate(1); // newest-first: SeqCst reads newest
                }
                let c = st.choose(cands.len(), NodeKind::Value);
                let idx = cands[c];
                let v = st.mem.read(me, loc, idx, o, &mut vc);
                st.threads[me].vc = vc;
                let stale = if c > 0 {
                    format!(" [stale mo#{idx}]")
                } else {
                    String::new()
                };
                let line = format!("t{me} {} load({o:?}) -> {v:#x}{stale}", st.mem.label(loc));
                self.after_mem_op(st, addr, false);
                (OpResult::Value(v), line)
            }
            Op::Store {
                addr,
                init,
                value,
                o,
            } => {
                let loc = st.loc_of(addr, init);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                vc.tick(me);
                st.mem.write(me, loc, value, o, &vc);
                st.threads[me].vc = vc;
                let line = format!("t{me} {} store({o:?}) = {value:#x}", st.mem.label(loc));
                self.after_mem_op(st, addr, true);
                (OpResult::Unit, line)
            }
            Op::Rmw {
                addr,
                init,
                kind,
                o,
            } => {
                let loc = st.loc_of(addr, init);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                vc.tick(me);
                let (_, old) = st.mem.latest(loc);
                let new = kind.apply(old);
                let read = st.mem.rmw(me, loc, new, o, &mut vc);
                debug_assert_eq!(read, old);
                st.threads[me].vc = vc;
                let line = format!(
                    "t{me} {} {}({o:?}) {old:#x} -> {new:#x}",
                    st.mem.label(loc),
                    kind.name()
                );
                self.after_mem_op(st, addr, true);
                (OpResult::Value(old), line)
            }
            Op::CmpEx {
                addr,
                init,
                current,
                new,
                success,
                failure,
            } => {
                let loc = st.loc_of(addr, init);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                vc.tick(me);
                let (idx, old) = st.mem.latest(loc);
                let ok = old == current;
                if ok {
                    st.mem.rmw(me, loc, new, success, &mut vc);
                } else {
                    st.mem.read(me, loc, idx, failure, &mut vc);
                }
                st.threads[me].vc = vc;
                let line = if ok {
                    format!(
                        "t{me} {} cas({success:?}) {old:#x} -> {new:#x}",
                        st.mem.label(loc)
                    )
                } else {
                    format!(
                        "t{me} {} cas({success:?}) failed: saw {old:#x}, wanted {current:#x}",
                        st.mem.label(loc)
                    )
                };
                self.after_mem_op(st, addr, ok);
                (OpResult::Cas(old, ok), line)
            }
            Op::OnceInit { addr } => {
                let loc = st.loc_of(addr, 0);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                vc.tick(me);
                let (_, old) = st.mem.latest(loc);
                st.mem.rmw(me, loc, old + 1, Ordering::AcqRel, &mut vc);
                st.threads[me].vc = vc;
                let line = format!("t{me} {} once_init (#{})", st.mem.label(loc), old + 1);
                self.after_mem_op(st, addr, true);
                (OpResult::Value(old), line)
            }
        };
        st.trace.push(format!("{seq:3}. {line}"));
        result
    }

    fn after_mem_op(&self, st: &mut RunState, addr: usize, wrote: bool) {
        st.wake_dependent(addr, wrote);
    }

    /// Drain-mode execution: no scheduling, no choices, no clocks — just
    /// keep values coherent (newest store) so threads can run to completion.
    fn exec_drain(&self, mut st: MutexGuard<'_, RunState>, me: usize, op: Op) -> OpResult {
        match op {
            Op::Start | Op::Spawn { .. } => OpResult::Unit,
            Op::Join { child } => {
                while !st.threads[child].finished {
                    st = self
                        .cv
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                OpResult::Unit
            }
            Op::Load { addr, init, .. } => {
                let loc = st.loc_of(addr, init);
                let (_, v) = st.mem.latest(loc);
                OpResult::Value(v)
            }
            Op::Store {
                addr,
                init,
                value,
                o,
            } => {
                let loc = st.loc_of(addr, init);
                let vc = st.threads[me].vc.clone();
                st.mem.write(me, loc, value, o, &vc);
                OpResult::Unit
            }
            Op::Rmw {
                addr,
                init,
                kind,
                o,
            } => {
                let loc = st.loc_of(addr, init);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                let (_, old) = st.mem.latest(loc);
                let read = st.mem.rmw(me, loc, kind.apply(old), o, &mut vc);
                st.threads[me].vc = vc;
                OpResult::Value(read)
            }
            Op::CmpEx {
                addr,
                init,
                current,
                new,
                success,
                ..
            } => {
                let loc = st.loc_of(addr, init);
                let (_, old) = st.mem.latest(loc);
                if old == current {
                    let mut vc = std::mem::take(&mut st.threads[me].vc);
                    st.mem.rmw(me, loc, new, success, &mut vc);
                    st.threads[me].vc = vc;
                }
                OpResult::Cas(old, old == current)
            }
            Op::OnceInit { addr } => {
                let loc = st.loc_of(addr, 0);
                let (_, old) = st.mem.latest(loc);
                let mut vc = std::mem::take(&mut st.threads[me].vc);
                st.mem.rmw(me, loc, old + 1, Ordering::AcqRel, &mut vc);
                st.threads[me].vc = vc;
                OpResult::Value(old)
            }
        }
    }
}

fn thread_body(shared: Arc<RunShared>, tid: usize, f: impl FnOnce() + Send + 'static) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), tid)));
    shared.initial_park(tid);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let panic_msg = result.err().map(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string())
    });
    shared.finish_thread(tid, panic_msg);
}
