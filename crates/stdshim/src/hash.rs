//! A fast, non-cryptographic hasher for small trusted keys.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! collision-resistant, which matters for maps keyed by attacker-chosen
//! strings — and costs tens of nanoseconds per lookup. The workspace's hot
//! maps are keyed by *internal* integers (interned `KeyId`s, config
//! fingerprints) where that resistance buys nothing: the key space is
//! program-generated and dense. [`FastHasher`] is an FxHash-style
//! multiplicative hasher — one `rotate ^ mul` per word — that cuts a map
//! lookup to a few nanoseconds on those paths.
//!
//! **Do not** use it for maps keyed by externally-supplied strings; the
//! default hasher's DoS resistance is the right trade there.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit golden ratio (same constant Fx/ahash lineage
/// uses); spreads consecutive integers across the full word.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// An FxHash-style word-at-a-time multiplicative [`Hasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; plug into `HashMap::with_hasher` or the
/// [`FastMap`]/[`FastSet`] aliases.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`] — for maps keyed by internal integers.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: T) -> u64 {
        FastBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_ne!(hash_of(42u32), hash_of(43u32));
        assert_ne!(hash_of(0u64), hash_of(1u64));
        // Consecutive small integers spread across the word.
        let a = hash_of(1u32);
        let b = hash_of(2u32);
        assert!((a ^ b).count_ones() > 8, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn byte_streams_with_different_boundaries_differ() {
        let mut h1 = FastHasher::default();
        h1.write(b"abcdefgh");
        h1.write(b"i");
        let mut h2 = FastHasher::default();
        h2.write(b"abcdefghi");
        // Same content, same split-independent words ⇒ equal is fine; the
        // important property is tail-length mixing:
        let mut h3 = FastHasher::default();
        h3.write(b"abcdefgh");
        let mut h4 = FastHasher::default();
        h4.write(b"abcdefgh\0");
        assert_ne!(h3.finish(), h4.finish());
        let _ = (h1.finish(), h2.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FastMap<u32, &str> = FastMap::default();
        for i in 0..1000u32 {
            map.insert(i, "x");
        }
        assert_eq!(map.len(), 1000);
        assert!(map.contains_key(&999));
        assert!(!map.contains_key(&1000));
        let mut set: FastSet<u64> = FastSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }
}
