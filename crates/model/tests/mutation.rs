//! Mutation harness: prove the checker has teeth.
//!
//! `ModelSlots::publish_avail_weak` is the real publish sequence with the
//! final `avail` bit-set deliberately weakened from `Release` to `Relaxed`.
//! Without the release edge a racing `claim_warm` may win the bit yet read
//! the entry word stale (zero) — tripping `claim_warm`'s own
//! `debug_assert_ne!(entry, 0, "claimed an avail bit over an empty slot")`.
//! If the checker ever stops finding that schedule, the memory model has
//! silently gone strong and every clean protocol report is worthless.
#![cfg(hotc_model)]

use containersim::ContainerId;
use hotc::shard::model_api::ModelSlots;
use hotc_model::{spawn, Checker};
use std::sync::Arc;

const C1: ContainerId = ContainerId(7);

/// The racing shape: one publisher, one claimer, both spawned so the claim
/// carries no spawn-edge visibility of the publish.
fn race(weak: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let s = Arc::new(ModelSlots::new(1));
        let s2 = Arc::clone(&s);
        let publisher = spawn(move || {
            let published = if weak {
                s2.publish_avail_weak(C1, true)
            } else {
                s2.publish_avail(C1, true)
            };
            assert!(published.is_some(), "the one slot was free");
        });
        let s3 = Arc::clone(&s);
        let claimer = spawn(move || {
            if let Some((_, c, execed)) = s3.claim_warm() {
                assert_eq!((c, execed), (C1, true), "torn publish observed");
            }
        });
        publisher.join();
        claimer.join();
    }
}

#[test]
fn relaxed_publish_mutation_is_caught() {
    let report = Checker::new().preemption_bound(2).try_check(race(true));
    let v = report
        .violation
        .expect("weakened publish must leak a torn entry to some schedule");
    assert!(
        v.message.contains("empty slot") || v.message.contains("torn publish"),
        "violation names the stale read: {}",
        v.message
    );
    assert!(!v.schedule.is_empty(), "schedule is replayable");
    let rendered = v.render();
    assert!(rendered.contains("replay choice vector"), "{rendered}");
    assert!(rendered.contains("execution trace"), "{rendered}");
}

#[test]
fn release_publish_survives_the_same_race() {
    // Control arm: identical shape, real ordering — the checker must
    // exhaust the tree clean, or the mutation test above proves nothing.
    let report = Checker::new().preemption_bound(2).try_check(race(false));
    assert!(
        report.violation.is_none(),
        "real publish ordering is correct: {:?}",
        report.violation
    );
    assert!(report.complete, "tree exhausted within budget");
}
