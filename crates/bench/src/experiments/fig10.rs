//! Figure 10: prediction strategy comparison and parameter sensitivity.
//!
//! (a) live-container demand for one runtime type over time, with a jump
//!     from ~8 to ~19 (the paper's relative error drops from 29 % with pure
//!     exponential smoothing to 10 % with the Markov-corrected combination);
//! (b) sensitivity to the smoothing coefficient α and the initial-value
//!     strategy: larger α tracks volatility faster but overshoots, and
//!     seeding with the historical mean helps the first few predictions.

use metrics_lite::Table;
use predictor::{
    mape, one_step_ahead, EsMarkov, ExponentialSmoothing, Holt, InitialValue, MarkovChain,
    Predictor, RegionPartition,
};
use simclock::SimRng;

/// Per-strategy evaluation on the Fig. 10(a) series.
pub struct StrategyEval {
    /// Strategy name.
    pub name: &'static str,
    /// One-step-ahead predictions (aligned with `series[1..]`).
    pub predictions: Vec<f64>,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Mean relative error over the jump indices only.
    pub jump_error: f64,
}

/// Result of the Fig. 10 experiment.
pub struct Fig10Result {
    /// The demand series (real required container counts).
    pub series: Vec<f64>,
    /// Index range `[start, end)` of the regime jump (second occurrence).
    pub jump_range: (usize, usize),
    /// Strategy evaluations: ES, Markov, ES+Markov.
    pub strategies: Vec<StrategyEval>,
    /// Sensitivity grid: (alpha, init, mape, early_mape).
    pub sensitivity: Vec<(f64, InitialValue, f64, f64)>,
}

/// The Fig. 10(a)-shaped demand series: two day-cycles of stable-then-jump
/// demand (8-ish → 19-ish) with deterministic jitter.
pub fn demand_series(seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seeded(seed);
    let mut series = Vec::new();
    for _cycle in 0..2 {
        for _ in 0..10 {
            series.push(8.0 + rng.uniform_u64(0, 3) as f64 - 1.0);
        }
        for _ in 0..10 {
            series.push(19.0 + rng.uniform_u64(0, 3) as f64 - 1.0);
        }
    }
    series
}

fn eval<P: Predictor>(
    name: &'static str,
    mut p: P,
    series: &[f64],
    jump: (usize, usize),
) -> StrategyEval {
    let predictions = one_step_ahead(&mut p, series);
    let actual = &series[1..];
    let m = mape(&predictions, actual);
    // Jump indices are positions in `series`; predictions[i] targets series[i+1].
    let (start, end) = jump;
    let jump_preds = &predictions[start - 1..end - 1];
    let jump_actual = &actual[start - 1..end - 1];
    StrategyEval {
        name,
        mape: m,
        jump_error: mape(jump_preds, jump_actual),
        predictions,
    }
}

/// Runs both panels.
pub fn run(seed: u64) -> Fig10Result {
    let series = demand_series(seed);
    // Second cycle's jump: indices 30..33 (first post-jump steps).
    let jump_range = (30usize, 34usize);

    // α = 0.8 is HotC's deployed setting; α = 0.3 exposes the smoothing lag
    // on regime jumps that the Markov correction compensates for (the
    // paper's 29 % → 10 % observation).
    let strategies = vec![
        eval(
            "exp-smoothing(0.8)",
            ExponentialSmoothing::paper_default(),
            &series,
            jump_range,
        ),
        eval(
            "exp-smoothing(0.3)",
            ExponentialSmoothing::new(0.3),
            &series,
            jump_range,
        ),
        eval(
            "markov",
            MarkovChain::new(RegionPartition::new(0.0, 25.0, 6)),
            &series,
            jump_range,
        ),
        eval("holt(0.8,0.3)", Holt::new(0.8, 0.3), &series, jump_range),
        eval(
            "es+markov(0.8)",
            EsMarkov::paper_default(),
            &series,
            jump_range,
        ),
        eval("es+markov(0.3)", EsMarkov::new(0.3), &series, jump_range),
    ];

    let mut sensitivity = Vec::new();
    for &alpha in &[0.2, 0.5, 0.8, 0.95] {
        for init in [InitialValue::FirstObservation, InitialValue::MeanOfFirst5] {
            let mut p = EsMarkov::with_init(alpha, init);
            let preds = one_step_ahead(&mut p, &series);
            let overall = mape(&preds, &series[1..]);
            let early = mape(&preds[..6], &series[1..7]);
            sensitivity.push((alpha, init, overall, early));
        }
    }

    Fig10Result {
        series,
        jump_range,
        strategies,
        sensitivity,
    }
}

impl Fig10Result {
    /// Looks up a strategy by name.
    pub fn strategy(&self, name: &str) -> &StrategyEval {
        self.strategies
            .iter()
            .find(|s| s.name == name)
            .expect("strategy evaluated")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Fig 10(a): live-container prediction, real vs strategies",
            &["t", "real", "es(0.3)", "markov", "es+markov(0.3)"],
        );
        for i in 1..self.series.len() {
            table.row(&[
                i.to_string(),
                format!("{:.0}", self.series[i]),
                format!(
                    "{:.1}",
                    self.strategy("exp-smoothing(0.3)").predictions[i - 1]
                ),
                format!("{:.1}", self.strategy("markov").predictions[i - 1]),
                format!("{:.1}", self.strategy("es+markov(0.3)").predictions[i - 1]),
            ]);
        }
        let mut out = table.render();
        let mut summary = Table::new("Fig 10(a) summary", &["strategy", "mape_%", "jump_error_%"]);
        for s in &self.strategies {
            summary.row(&[
                s.name.to_string(),
                format!("{:.1}", s.mape * 100.0),
                format!("{:.1}", s.jump_error * 100.0),
            ]);
        }
        out.push('\n');
        out.push_str(&summary.render());
        out.push_str(
            "(paper: combining ES with the Markov correction drops the jump error ≈29% → ≈10%)\n\n",
        );

        let mut sens = Table::new(
            "Fig 10(b): sensitivity to alpha and initial value",
            &["alpha", "init", "mape_%", "early_mape_%"],
        );
        for &(alpha, init, overall, early) in &self.sensitivity {
            sens.row(&[
                format!("{alpha:.2}"),
                match init {
                    InitialValue::FirstObservation => "first-obs".to_string(),
                    InitialValue::MeanOfFirst5 => "mean-of-5".to_string(),
                },
                format!("{:.1}", overall * 100.0),
                format!("{:.1}", early * 100.0),
            ]);
        }
        out.push_str(&sens.render());
        out
    }
}
