//! lint-fixture-path: crates/predictor/src/fixture.rs
use std::collections::HashMap;
struct S { m: HashMap<u64, u64> }
fn f(s: &S) -> Option<u64> {
    s.m.get(&1).copied()
}
