//! Figure 2: the GitHub Dockerfile survey — a few base images dominate.

use metrics_lite::Table;
use workloads::dockerfiles::{ConfigCategory, DockerfileSurvey};

/// Result of the Fig. 2 experiment.
pub struct Fig2Result {
    /// Survey over the "all projects" population.
    pub all_projects: DockerfileSurvey,
    /// Survey over the "top-100 popular" population (stronger concentration:
    /// popular projects cluster even harder on standard bases).
    pub top100: DockerfileSurvey,
    /// Fraction of all projects covered by the 4 most popular images.
    pub all_top4_share: f64,
    /// Fraction of top-100 projects covered by the 4 most popular images.
    pub top100_top4_share: f64,
}

/// Samples both populations. `n_all` is the "thousands of Dockerfiles" size.
pub fn run(n_all: usize, seed: u64) -> Fig2Result {
    // Popular projects follow a steeper popularity law.
    let all_projects = DockerfileSurvey::sample(n_all, 1.0, seed);
    let top100 = DockerfileSurvey::sample(100, 1.6, seed.wrapping_add(1));
    let all_top4_share = all_projects.top_k_share(4);
    let top100_top4_share = top100.top_k_share(4);
    Fig2Result {
        all_projects,
        top100,
        all_top4_share,
        top100_top4_share,
    }
}

impl Fig2Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Fig 2(a): base-image popularity (share of projects)",
            &["image", "all_projects_%", "top100_%"],
        );
        let total_all = self.all_projects.total() as f64;
        let total_top = self.top100.total() as f64;
        let top_counts: std::collections::BTreeMap<_, _> =
            self.top100.ranked().into_iter().collect();
        for (image, count) in self.all_projects.ranked() {
            table.row(&[
                image.to_string(),
                format!("{:.1}", count as f64 / total_all * 100.0),
                format!(
                    "{:.1}",
                    top_counts.get(image).copied().unwrap_or(0) as f64 / total_top * 100.0
                ),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "\ntop-4 images cover {:.1}% of all projects, {:.1}% of the top-100\n\n",
            self.all_top4_share * 100.0,
            self.top100_top4_share * 100.0
        ));

        let mut cat = Table::new(
            "Fig 2(b): configuration category shares",
            &["category", "share_%"],
        );
        for (category, share) in self.all_projects.category_shares() {
            cat.row(&[category.name().to_string(), format!("{:.1}", share * 100.0)]);
        }
        out.push_str(&cat.render());
        out
    }

    /// The OS/language/application shares of the "all projects" population.
    pub fn category_share(&self, category: ConfigCategory) -> f64 {
        self.all_projects
            .category_shares()
            .get(&category)
            .copied()
            .unwrap_or(0.0)
    }
}
