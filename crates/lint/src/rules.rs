//! The deny-by-default rule set.
//!
//! Every rule reports [`Violation`]s against the masked source (see
//! [`crate::scan`]); a violation is suppressed by a
//! `// lint:allow(rule, reason)` comment on the same line or on a
//! comment-only line directly above it. The reason is mandatory — an allow
//! without one is itself a violation (`allow-syntax`).
//!
//! | rule              | forbids                                              |
//! |-------------------|------------------------------------------------------|
//! | `wall-clock`      | `Instant::now` / `SystemTime::now` outside the bench |
//! |                   | harness and tests (simulated time only)              |
//! | `raw-lock`        | `std::sync::Mutex` / `RwLock` outside `stdshim` (the |
//! |                   | wrappers carry the lock-order sanitizer)             |
//! | `map-iteration`   | iterating `HashMap`/`HashSet` bindings in the        |
//! |                   | deterministic result-path crates                     |
//! | `unwrap`          | `.unwrap()` / `.expect(` in non-test library code    |
//! | `atomic-ordering` | `Ordering::Relaxed` as the success ordering of a     |
//! |                   | store/swap/CAS/`fetch_or`/`fetch_and`/`fetch_update` |
//! |                   | (publication ops; pure counters stay Relaxed)        |
//! | `atomic-seqcst`   | `Ordering::SeqCst` in the request-path crates (a     |
//! |                   | per-request full fence; acq/rel suffices everywhere) |
//! | `atomic-facade`   | raw `std::sync::atomic` in the slot-protocol modules |
//! |                   | (must route through `stdshim::atomic` so the model   |
//! |                   | checker sees every access)                           |
//! | `unchecked-cas`   | discarding a `compare_exchange[_weak]` /             |
//! |                   | `fetch_update` result (bare statement or `let _ =`)  |
//! | `hermetic-deps`   | non-path dependencies in any `Cargo.toml`            |

use crate::scan::{scan, Scanned};

/// One rule violation at a file/line.
#[derive(Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (the name `lint:allow` must reference).
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl Violation {
    fn new(file: &str, line: usize, rule: &'static str, msg: String) -> Self {
        Violation {
            file: file.to_string(),
            line,
            rule,
            msg,
        }
    }
}

/// Crates whose results must be bit-for-bit deterministic: the discrete-event
/// clock substitutes for the paper's real testbed, so iteration order leaking
/// into results would corrupt the experiment itself.
const DETERMINISTIC_CRATES: [&str; 3] = [
    "crates/container-sim/",
    "crates/simclock/",
    "crates/predictor/",
];

/// True for paths whose code is test/bench/example scaffolding rather than
/// library code.
fn is_test_scaffolding(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

/// True if `needle` occurs in `hay` ending at a word boundary (the next char
/// is not part of an identifier). Returns the byte offset of the match.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(i) = hay[from..].find(needle) {
        let at = from + i;
        let end = at + needle.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return Some(at);
        }
        from = end;
    }
    None
}

/// Parsed `lint:allow(rule, reason)` escapes found on one line, plus any
/// malformed occurrences (missing reason / unclosed parens).
fn parse_allows(text: &str) -> (Vec<String>, Vec<String>) {
    const MARKER: &str = "lint:allow(";
    let mut rules = Vec::new();
    let mut malformed = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find(MARKER) {
        let args_start = i + MARKER.len();
        let Some(close) = rest[args_start..].find(')') else {
            malformed.push("`lint:allow(` without a closing `)`".to_string());
            break;
        };
        let args = &rest[args_start..args_start + close];
        match args.split_once(',') {
            Some((rule, reason)) if !reason.trim().is_empty() => {
                rules.push(rule.trim().to_string());
            }
            _ => malformed.push(format!(
                "`lint:allow({args})` is missing a reason — the escape hatch \
                 requires `lint:allow(rule, reason)`"
            )),
        }
        rest = &rest[args_start + close..];
    }
    (rules, malformed)
}

/// The allow rules that cover line `idx` (0-based): escapes in the line's
/// own comment or on a comment-only line directly above. Parsed from the
/// comments view, so `lint:allow` inside a string literal is inert.
fn allows_for(scanned: &Scanned, idx: usize) -> Vec<String> {
    let mut rules = parse_allows(&scanned.comments[idx]).0;
    if idx > 0 && scanned.raw[idx - 1].trim().starts_with("//") {
        rules.extend(parse_allows(&scanned.comments[idx - 1]).0);
    }
    rules
}

/// Collects identifiers bound to hash-ordered containers in this file: field
/// and binding declarations (`name: HashMap<…>`, `name = HashMap::new()`,
/// `name: &HashSet<…>`), so usage sites can be matched by name.
fn hash_container_idents(scanned: &Scanned) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in &scanned.code {
        for marker in ["HashMap<", "HashMap::", "HashSet<", "HashSet::"] {
            let mut from = 0;
            while let Some(i) = line[from..].find(marker) {
                let at = from + i;
                // Walk backwards over `: ` / `= ` / `&`/`mut` to the ident.
                let before = line[..at].trim_end();
                let before = before
                    .strip_suffix("mut")
                    .map(str::trim_end)
                    .unwrap_or(before);
                let before = before
                    .strip_suffix('&')
                    .map(str::trim_end)
                    .unwrap_or(before);
                let before = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                    .map(str::trim_end)
                    .unwrap_or("");
                let ident: String = before
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty()
                    && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !idents.contains(&ident)
                {
                    idents.push(ident);
                }
                from = at + marker.len();
            }
        }
    }
    idents
}

/// Crates on the request hot path, where a stray `SeqCst` is a full fence
/// per request. The workspace protocol is acquire/release: if a site truly
/// needs sequential consistency, the `lint:allow` reason must say why.
const REQUEST_PATH_CRATES: [&str; 4] = [
    "crates/stdshim/",
    "crates/core/",
    "crates/metrics/",
    "crates/faas/",
];

/// Modules carrying the lock-free slot protocol. Every atomic here must
/// route through the `stdshim::atomic` facade (`ShimAtomicU64` & co.) so the
/// `--cfg hotc_model` build puts it under the model checker — one raw
/// `std::sync::atomic` access is an interleaving the checker never explores.
const FACADE_MODULES: [&str; 2] = [
    "crates/stdshim/src/sync_slots.rs",
    "crates/core/src/shard.rs",
];

/// Atomic ops that *publish* state other threads read: a `Relaxed` success
/// ordering on one of these orders nothing and a reader can observe the
/// containing object half-written. Pure counter RMWs (`fetch_add`,
/// `fetch_sub`, `fetch_max`, `fetch_min`) and bare loads are the allowed
/// Relaxed idiom and are deliberately absent.
const PUBLICATION_OPS: [&str; 7] = [
    ".store(",
    ".swap(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_update(",
];

/// CAS-family ops whose `Result` encodes whether the update happened.
const CAS_OPS: [&str; 3] = [
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_update(",
];

/// The publication op on `code` whose *success* ordering is `Relaxed`, if
/// any. The success ordering is the first `Ordering::` argument after the
/// op (`compare_exchange(cur, new, success, failure)` — a `Relaxed`
/// *failure* ordering is idiomatic and legal). Calls split across lines are
/// handled by also looking at the next line for the ordering argument.
fn relaxed_publication(code: &str, next: Option<&str>) -> Option<&'static str> {
    let joined = next.map(|n| format!("{} {}", code.trim_end(), n.trim_start()));
    let hay = joined.as_deref().unwrap_or(code);
    if !hay.contains("Ordering::Relaxed") {
        return None;
    }
    for op in PUBLICATION_OPS {
        let Some(at) = code.find(op) else { continue };
        let after = &hay[at + op.len()..];
        let Some(o) = after.find("Ordering::") else {
            continue;
        };
        if after[o..].starts_with("Ordering::Relaxed") {
            return Some(op.trim_matches(['.', '(']));
        }
    }
    None
}

/// Whether the CAS-family call starting at `at` in line `idx` discards its
/// `Result`: statement position with nothing consuming the value (`;` right
/// after the call's closing paren) or an explicit `let _ =`. The closing
/// paren is matched over a few following lines so multi-line argument lists
/// resolve.
fn unchecked_cas(scanned: &Scanned, idx: usize, op: &str, at: usize) -> bool {
    let code = &scanned.code[idx];
    let before = code[..at].trim_start();
    if let Some(rest) = before.strip_prefix("let ") {
        // A named binding is an inspection; `let _ =` is the documented
        // don't-care discard this rule exists to flag.
        let bind = rest.trim_start();
        return bind.starts_with('_')
            && !bind
                .chars()
                .nth(1)
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
    }
    // Anything consuming the expression: an assignment or comparison, a
    // condition/guard keyword, a match arm, argument position (an open
    // paren pending on this line — also covers closure bodies), a continued
    // method chain, or a chain whose receiver sits on a previous line
    // (`match self\n.nanos\n.compare_exchange(…)` — the consumer is above).
    let consumed_before = before.contains('=')
        || ["if ", "while ", "match ", "return "]
            .iter()
            .any(|k| before.starts_with(k))
        || before.matches('(').count() > before.matches(')').count()
        || before.ends_with(',')
        || before.ends_with('.')
        || before.ends_with('&')
        || before.ends_with('!')
        || before.is_empty() && code.trim_start().starts_with('.');
    if consumed_before {
        return false;
    }
    // Statement position: walk to the call's matching `)` (window of a few
    // lines) and see whether anything consumes the Result after it.
    let window = scanned.code[idx..scanned.code.len().min(idx + 6)].join(" ");
    let start = code[..at].len() + op.len(); // first byte after the open paren
    let mut depth = 1i32;
    let mut rest = window[start..].char_indices();
    for (i, ch) in &mut rest {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    let after = window[start + i + ch.len_utf8()..].trim_start();
                    // `.method()` or `?` consume the Result; `;`, `}` or
                    // end-of-window leave it dropped on the floor.
                    return !(after.starts_with('.') || after.starts_with('?'));
                }
            }
            _ => {}
        }
    }
    false // unbalanced within the window: give the code the benefit of doubt
}

/// Iteration-looking accessors on a map/set binding whose order reaches the
/// caller. (`.get`/`.insert`/`.len` are point lookups and stay legal.)
const ITERATION_ACCESSORS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Runs every source rule over one `.rs` file.
pub fn check_rust_file(rel: &str, src: &str) -> Vec<Violation> {
    let scanned = scan(src);
    let mut out = Vec::new();
    let scaffolding = is_test_scaffolding(rel);
    let bench_crate = rel.starts_with("crates/bench/");
    let stdshim_crate = rel.starts_with("crates/stdshim/");
    let deterministic = DETERMINISTIC_CRATES.iter().any(|c| rel.starts_with(c));
    let map_idents = if deterministic {
        hash_container_idents(&scanned)
    } else {
        Vec::new()
    };

    for (idx, code) in scanned.code.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = scanned.test[idx];
        let mut candidates: Vec<(&'static str, String)> = Vec::new();

        // wall-clock: simulated time only — a real-clock read makes runs
        // unreproducible. Bench scaffolding measures real time by design.
        if !bench_crate && !scaffolding && !in_test {
            for pat in ["Instant::now", "SystemTime::now"] {
                if find_word(code, pat).is_some() {
                    candidates.push((
                        "wall-clock",
                        format!("`{pat}` reads the wall clock; simulation code must use SimTime"),
                    ));
                }
            }
        }

        // raw-lock: all locks go through stdshim so the lock-order sanitizer
        // sees them.
        if !stdshim_crate && code.contains("std::sync::") {
            for ty in ["Mutex", "RwLock"] {
                if let Some(at) = find_word(code, &format!("std::sync::{ty}")) {
                    let _ = at;
                    candidates.push((
                        "raw-lock",
                        format!(
                            "`std::sync::{ty}` bypasses the stdshim lock-order sanitizer; \
                             use `stdshim::{ty}`"
                        ),
                    ));
                }
            }
        }

        // map-iteration: deterministic crates must not let hash iteration
        // order reach results. Method chains are often split across lines
        // (`self\n.containers\n.iter()`), so accessors are also matched on
        // the join of each line with its successor.
        if deterministic && !scaffolding && !in_test {
            let next = scanned.code.get(idx + 1);
            let joined = next.map(|n| format!("{}{}", code.trim_end(), n.trim_start()));
            for ident in &map_idents {
                let mut hit = None;
                for acc in ITERATION_ACCESSORS {
                    let pat = format!("{ident}{acc}");
                    // A joined match counts only when it straddles the line
                    // break — a pattern whole on the next line is that
                    // line's own finding.
                    let straddles = joined.as_deref().is_some_and(|j| j.contains(&pat))
                        && !next.is_some_and(|n| n.contains(&pat));
                    if code.contains(&pat) || straddles {
                        hit = Some(pat);
                        break;
                    }
                }
                if hit.is_none() {
                    for form in [
                        format!(" in {ident}"),
                        format!(" in &{ident}"),
                        format!(" in &mut {ident}"),
                    ] {
                        if let Some(at) = code.find(&form) {
                            let end = at + form.len();
                            let boundary = code[end..]
                                .chars()
                                .next()
                                .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != '.');
                            if boundary && code.trim_start().starts_with("for ") {
                                hit = Some(form.trim_start().to_string());
                                break;
                            }
                        }
                    }
                }
                if let Some(expr) = hit {
                    candidates.push((
                        "map-iteration",
                        format!(
                            "`{expr}` iterates a hash container in a deterministic-result \
                             crate; sort first or prove order-insensitivity"
                        ),
                    ));
                }
            }
        }

        // atomic-ordering: a Relaxed success ordering on a publication op
        // (store/swap/CAS/bit-set) orders nothing — racing readers can see
        // the guarded state half-written. Counters stay Relaxed by idiom.
        if !scaffolding && !in_test {
            if let Some(op) =
                relaxed_publication(code, scanned.code.get(idx + 1).map(String::as_str))
            {
                candidates.push((
                    "atomic-ordering",
                    format!(
                        "`{op}` with a Relaxed success ordering publishes nothing; use \
                         Release/AcqRel, or justify the counter idiom with lint:allow"
                    ),
                ));
            }
        }

        // atomic-seqcst: the protocol is acquire/release end to end; SeqCst
        // on the request path is a silent per-request full fence.
        if !scaffolding
            && !in_test
            && code.contains("Ordering::SeqCst")
            && REQUEST_PATH_CRATES.iter().any(|c| rel.starts_with(c))
        {
            candidates.push((
                "atomic-seqcst",
                "`Ordering::SeqCst` in a request-path crate; the slot protocol is \
                 acquire/release — justify the full fence with lint:allow or weaken it"
                    .to_string(),
            ));
        }

        // atomic-facade: protocol modules must use the stdshim::atomic
        // facade so the model-checker build instruments every access.
        if !in_test && FACADE_MODULES.contains(&rel) && code.contains("std::sync::atomic") {
            candidates.push((
                "atomic-facade",
                "raw `std::sync::atomic` in a slot-protocol module; use the \
                 `stdshim::atomic` facade (ShimAtomicU64/ShimAtomicUsize/ShimOnceLock) \
                 so `--cfg hotc_model` builds put this access under the model checker"
                    .to_string(),
            ));
        }

        // unchecked-cas: a CAS that may fail but whose Result is discarded
        // is a race half-fixed — the failing path silently does nothing.
        if !scaffolding && !in_test {
            for op in CAS_OPS {
                if let Some(at) = code.find(op) {
                    if unchecked_cas(&scanned, idx, op, at) {
                        candidates.push((
                            "unchecked-cas",
                            format!(
                                "`{}` result discarded; handle the failure arm (retry, \
                                 fall back, or assert) instead of dropping it",
                                op.trim_matches(['.', '('])
                            ),
                        ));
                    }
                }
            }
        }

        // unwrap: library code returns typed errors; a panic in the gateway
        // is an availability bug, not error handling.
        if !bench_crate && !scaffolding && !in_test {
            if code.contains(".unwrap()") {
                candidates.push((
                    "unwrap",
                    "`.unwrap()` in library code; return a typed error or document the \
                     invariant with lint:allow"
                        .to_string(),
                ));
            }
            if code.contains(".expect(") {
                candidates.push((
                    "unwrap",
                    "`.expect(…)` in library code; return a typed error or document the \
                     invariant with lint:allow"
                        .to_string(),
                ));
            }
        }

        if !candidates.is_empty() {
            let allowed = allows_for(&scanned, idx);
            for (rule, msg) in candidates {
                if !allowed.iter().any(|a| a == rule) {
                    out.push(Violation::new(rel, line_no, rule, msg));
                }
            }
        }

        // Malformed allow escapes are violations wherever they appear in a
        // comment — a missing reason must not silently suppress nothing.
        for msg in parse_allows(&scanned.comments[idx]).1 {
            out.push(Violation::new(rel, line_no, "allow-syntax", msg));
        }
    }
    out
}

/// Keys inside a dependency entry's inline table that make it non-hermetic
/// (same set as `tests/hermetic.rs`, which remains as the tier-1 guard).
const FORBIDDEN_SOURCE_KEYS: [&str; 4] = ["git", "registry", "registry-index", "version"];

/// Registry crates that were replaced with in-repo code and must not return
/// under any section or table form.
const REPLACED_CRATES: [&str; 7] = [
    "rand",
    "proptest",
    "criterion",
    "crossbeam",
    "parking_lot",
    "bytes",
    "serde",
];

/// True if the section header opens a dependency table.
fn is_dependency_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// One dependency line's hermeticity problem, if any.
fn check_dep_line(line: &str) -> Option<String> {
    let (key, value) = line.split_once('=')?;
    let key = key.trim();
    let value = value.trim();
    if value.starts_with('"') || value.starts_with('\'') {
        return Some(format!("`{key}` uses a registry version string ({value})"));
    }
    if value.starts_with('{') {
        if !value.contains("path") && !value.contains("workspace") {
            return Some(format!("`{key}` has neither `path` nor `workspace = true`"));
        }
        for forbidden in FORBIDDEN_SOURCE_KEYS {
            // Match the key position of an inline-table entry, not substrings
            // of other keys or values.
            let mut rest = value;
            while let Some(idx) = rest.find(forbidden) {
                let before = value.len() - rest.len() + idx;
                let prev = value[..before].trim_end().chars().next_back();
                let after = rest[idx + forbidden.len()..].trim_start().chars().next();
                if matches!(prev, Some('{') | Some(',')) && after == Some('=') {
                    return Some(format!("`{key}` sets `{forbidden}` ({value})"));
                }
                rest = &rest[idx + forbidden.len()..];
            }
        }
    }
    None
}

/// `hermetic-deps` over one `Cargo.toml`: every dependency must be a path
/// dependency into this workspace. No allow escape — hermeticity is absolute.
pub fn check_manifest(rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).to_string();
            // `[dependencies.serde]`-style tables reintroduce a replaced
            // crate without tripping the line parser below.
            for name in REPLACED_CRATES {
                for table in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                    if section == format!("{table}{name}") {
                        out.push(Violation::new(
                            rel,
                            line_no,
                            "hermetic-deps",
                            format!("replaced registry crate `{name}` reappeared as a table"),
                        ));
                    }
                }
            }
            continue;
        }
        if is_dependency_section(&section) {
            if let Some(problem) = check_dep_line(line) {
                out.push(Violation::new(rel, line_no, "hermetic-deps", problem));
            }
            for name in REPLACED_CRATES {
                if line.starts_with(&format!("{name} ")) || line.starts_with(&format!("{name}=")) {
                    out.push(Violation::new(
                        rel,
                        line_no,
                        "hermetic-deps",
                        format!("replaced registry crate `{name}` reappeared"),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn wall_clock_flagged_in_library_code() {
        let v = check_rust_file("crates/core/src/x.rs", "let t = Instant::now();\n");
        assert_eq!(rules_of(&v), ["wall-clock"]);
    }

    #[test]
    fn wall_clock_allowed_in_bench_and_tests() {
        assert!(check_rust_file("crates/bench/src/harness.rs", "Instant::now();\n").is_empty());
        assert!(check_rust_file("crates/core/tests/t.rs", "Instant::now();\n").is_empty());
        let gated = "#[cfg(test)]\nmod tests {\n fn t() { let _ = Instant::now(); }\n}\n";
        assert!(check_rust_file("crates/core/src/x.rs", gated).is_empty());
    }

    #[test]
    fn wall_clock_in_comment_or_string_is_ignored() {
        let src = "// Instant::now() would be wrong\nlet s = \"Instant::now\";\n";
        assert!(check_rust_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_lock_flagged_outside_stdshim() {
        let v = check_rust_file("crates/core/src/x.rs", "use std::sync::Mutex;\n");
        assert_eq!(rules_of(&v), ["raw-lock"]);
        assert!(
            check_rust_file("crates/stdshim/src/sync.rs", "std::sync::Mutex::new(())").is_empty()
        );
        // Guard types don't match on the word boundary.
        assert!(check_rust_file("crates/core/src/x.rs", "use std::sync::MutexGuard;\n").is_empty());
        // Arc is fine.
        assert!(check_rust_file("crates/core/src/x.rs", "use std::sync::Arc;\n").is_empty());
    }

    #[test]
    fn map_iteration_flagged_in_deterministic_crates_only() {
        let src = "struct S { containers: HashMap<u64, u64> }\nfn f(s: &S) { for c in s.containers.values() {} }\n";
        let v = check_rust_file("crates/container-sim/src/x.rs", src);
        assert_eq!(rules_of(&v), ["map-iteration"]);
        assert!(check_rust_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn map_iteration_matches_split_method_chains() {
        let src = "struct S { containers: HashMap<u64, u64> }\nfn f(s: &S) {\n    let v: Vec<_> = s\n        .containers\n        .iter()\n        .collect();\n}\n";
        let v = check_rust_file("crates/container-sim/src/x.rs", src);
        assert_eq!(v.len(), 1, "one finding, not one per joined window");
        assert_eq!(v[0].rule, "map-iteration");
        assert_eq!(v[0].line, 4); // the `.containers` line
    }

    #[test]
    fn map_iteration_matches_borrowed_params() {
        let src = "fn f(m: &HashMap<u32, u32>, s: &mut HashSet<u32>) {\n    let _: Vec<_> = m.values().collect();\n    for x in s.iter() {\n        let _ = x;\n    }\n}\n";
        let v = check_rust_file("crates/predictor/src/x.rs", src);
        assert_eq!(rules_of(&v), ["map-iteration", "map-iteration"]);
    }

    #[test]
    fn map_point_lookups_are_fine() {
        let src = "struct S { m: HashMap<u64, u64> }\nfn f(s: &S) { s.m.get(&1); s.m.len(); }\n";
        assert!(check_rust_file("crates/predictor/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_and_allowed() {
        let v = check_rust_file("crates/core/src/x.rs", "x.unwrap();\ny.expect(\"m\");\n");
        assert_eq!(rules_of(&v), ["unwrap", "unwrap"]);
        let allowed = "x.unwrap(); // lint:allow(unwrap, index bounded by loop above)\n";
        assert!(check_rust_file("crates/core/src/x.rs", allowed).is_empty());
        let above = "// lint:allow(unwrap, checked two lines up)\nx.unwrap();\n";
        assert!(check_rust_file("crates/core/src/x.rs", above).is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let src = "x.unwrap_or_else(|| 0);\nx.unwrap_or(0);\ny.expect_err(\"no\");\n";
        assert!(check_rust_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "x.unwrap(); // lint:allow(unwrap)\n";
        let v = check_rust_file("crates/core/src/x.rs", src);
        assert!(rules_of(&v).contains(&"allow-syntax"));
        assert!(rules_of(&v).contains(&"unwrap"));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "x.unwrap(); // lint:allow(wall-clock, not the right rule)\n";
        let v = check_rust_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&v), ["unwrap"]);
    }

    #[test]
    fn atomic_ordering_flags_relaxed_publication_ops() {
        for src in [
            "x.store(1, Ordering::Relaxed);\n",
            "let old = x.swap(v, Ordering::Relaxed);\n",
            "let f = x.fetch_or(mask, Ordering::Relaxed);\n",
            "let f = x.fetch_and(!mask, Ordering::Relaxed);\n",
        ] {
            let v = check_rust_file("crates/core/src/x.rs", src);
            assert_eq!(rules_of(&v), ["atomic-ordering"], "src: {src}");
        }
        // Success ordering Relaxed on a CAS, even split across lines.
        let cas = "let r = x.compare_exchange(\n    a, b, Ordering::Relaxed, Ordering::Relaxed);\nr.is_ok();\n";
        assert_eq!(
            rules_of(&check_rust_file("crates/core/src/x.rs", cas)),
            ["atomic-ordering"]
        );
    }

    #[test]
    fn atomic_ordering_permits_counters_loads_and_failure_orderings() {
        let ok = "c.fetch_add(1, Ordering::Relaxed);\n\
                  c.fetch_sub(1, Ordering::Relaxed);\n\
                  w.fetch_max(n, Ordering::Relaxed);\n\
                  let v = x.load(Ordering::Relaxed);\n\
                  if x.compare_exchange(a, b, Ordering::Acquire, Ordering::Relaxed).is_ok() {}\n\
                  x.store(1, Ordering::Release);\n";
        assert!(check_rust_file("crates/core/src/x.rs", ok).is_empty());
        let allowed =
            "x.store(0, Ordering::Relaxed); // lint:allow(atomic-ordering, reset under lock)\n";
        assert!(check_rust_file("crates/core/src/x.rs", allowed).is_empty());
        // Tests and scaffolding may do what they like.
        assert!(
            check_rust_file("crates/core/tests/t.rs", "x.store(1, Ordering::Relaxed);\n")
                .is_empty()
        );
    }

    #[test]
    fn atomic_seqcst_flagged_on_request_path_only() {
        let src = "x.load(Ordering::SeqCst);\n";
        for rel in [
            "crates/core/src/x.rs",
            "crates/stdshim/src/x.rs",
            "crates/metrics/src/x.rs",
            "crates/faas/src/x.rs",
        ] {
            assert_eq!(
                rules_of(&check_rust_file(rel, src)),
                ["atomic-seqcst"],
                "{rel}"
            );
        }
        assert!(check_rust_file("crates/bench/src/x.rs", src).is_empty());
        assert!(check_rust_file("crates/core/tests/t.rs", src).is_empty());
    }

    #[test]
    fn atomic_facade_guards_protocol_modules() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        for rel in FACADE_MODULES {
            assert_eq!(
                rules_of(&check_rust_file(rel, src)),
                ["atomic-facade"],
                "{rel}"
            );
        }
        // Other modules (including the facade itself) may name std atomics.
        assert!(check_rust_file("crates/stdshim/src/atomic.rs", src).is_empty());
        assert!(check_rust_file("crates/core/src/concurrent.rs", src).is_empty());
        // Test scaffolding inside a protocol module is exempt.
        let gated = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n}\n";
        assert!(check_rust_file("crates/core/src/shard.rs", gated).is_empty());
    }

    #[test]
    fn unchecked_cas_flags_discarded_results() {
        let bare = "x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire);\n";
        assert_eq!(
            rules_of(&check_rust_file("crates/core/src/x.rs", bare)),
            ["unchecked-cas"]
        );
        let underscore =
            "let _ = x.compare_exchange_weak(1, 0, Ordering::AcqRel, Ordering::Acquire);\n";
        assert_eq!(
            rules_of(&check_rust_file("crates/core/src/x.rs", underscore)),
            ["unchecked-cas"]
        );
        let multiline = "x.fetch_update(\n    Ordering::AcqRel,\n    Ordering::Acquire,\n    |v| Some(v + 1),\n);\n";
        assert_eq!(
            rules_of(&check_rust_file("crates/core/src/x.rs", multiline)),
            ["unchecked-cas"]
        );
    }

    #[test]
    fn unchecked_cas_permits_inspected_results() {
        let ok = "let won = x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire);\n\
                  if x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire).is_ok() {}\n\
                  match x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire) { _ => {} }\n\
                  x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire).ok();\n\
                  x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)?;\n\
                  assert!(x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire).is_ok());\n";
        assert!(check_rust_file("crates/core/src/x.rs", ok).is_empty());
        let chained_next = "x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)\n    .expect_err(\"must fail\");\n";
        assert!(check_rust_file("crates/core/src/x.rs", chained_next).is_empty());
        // Receiver above, op on a continuation line, result fed to `match`.
        let continuation = "match self\n    .nanos\n    .compare_exchange_weak(c, t, Ordering::AcqRel, Ordering::Acquire)\n{\n    Ok(_) => {}\n    Err(_) => {}\n}\n";
        assert!(check_rust_file("crates/core/src/x.rs", continuation).is_empty());
        // Inside a closure argument the result is the closure's value.
        let in_closure = "a.unwrap_or_else(|| inner.compare_exchange(c, n, Ordering::AcqRel, Ordering::Acquire))\n";
        assert!(check_rust_file("crates/core/src/x.rs", in_closure).is_empty());
    }

    #[test]
    fn hermetic_deps_rejects_registry_forms() {
        let toml = "[dependencies]\nserde = \"1\"\n";
        let v = check_manifest("crates/x/Cargo.toml", toml);
        assert!(v.iter().all(|v| v.rule == "hermetic-deps"));
        assert_eq!(v.len(), 2); // version string + replaced name

        let git = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(check_manifest("c/Cargo.toml", git).len(), 1);

        let table = "[dependencies.serde]\nversion = \"1\"\n";
        assert!(!check_manifest("c/Cargo.toml", table).is_empty());

        let ok = "[dependencies]\nsimclock = { path = \"../simclock\" }\nstdshim = { workspace = true }\n";
        assert!(check_manifest("c/Cargo.toml", ok).is_empty());
    }
}
