//! Property test: the partitioned parallel replay is observationally
//! identical to the sequential one (tentpole acceptance of the parallel
//! driver).
//!
//! For every `WorkloadSpec` variant and every provider, `run_scenario`
//! (sequential streaming) and `run_scenario_parallel` at 1, 2, and 8 workers
//! must produce byte-identical rendered reports and byte-identical metrics
//! JSON. One worker routes through the same partitioned code path (spawn-free
//! degenerate case); eight workers exceed the key-group count of the small
//! fixtures, so some workers own zero slots and still tick to the global
//! horizon.

use containersim::{HardwareProfile, LanguageRuntime, NetworkMode};
use hotc_cli::scenario::{FunctionDecl, ProviderSpec, WorkloadSpec};
use hotc_cli::{run_scenario, run_scenario_parallel, Scenario};
use simclock::SimDuration;
use std::collections::BTreeMap;
use std::path::PathBuf;
use stdshim::ToJson;

const THREAD_COUNTS: &[usize] = &[1, 2, 8];

fn decl(name: &str, app: &str, replicas: usize) -> FunctionDecl {
    FunctionDecl {
        name: name.to_string(),
        app: app.to_string(),
        lang: LanguageRuntime::Python,
        network: NetworkMode::Bridge,
        env: BTreeMap::new(),
        replicas,
    }
}

fn scenario(provider: ProviderSpec, seed: u64, workload: WorkloadSpec) -> Scenario {
    Scenario {
        hardware: HardwareProfile::server(),
        provider,
        seed,
        tick: SimDuration::from_secs(30),
        crash_rate: 0.0,
        replay_threads: None,
        functions: vec![
            decl("alpha", "qr-code", 1),
            decl("beta", "random-number", 3),
        ],
        workload,
    }
}

/// Writes the sample file-backed traces once per test process.
fn sample_files() -> (PathBuf, PathBuf) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let csv = dir.join("par_equiv_azure.csv");
    let opendc = dir.join("par_equiv_opendc.trace");
    std::fs::write(&csv, "name,m1,m2,m3\nfn-a,5,0,9\nfn-b,2,2,2\nfn-c,0,7,1\n").expect("write csv");
    std::fs::write(
        &opendc,
        "timestamp,function\n0,fa\n250,fb\n250,fa\n900,fc\n900,fb\n1800,fa\n",
    )
    .expect("write opendc");
    (csv, opendc)
}

fn all_variants() -> Vec<WorkloadSpec> {
    let (csv, opendc) = sample_files();
    let m = SimDuration::from_mins;
    let s = SimDuration::from_secs;
    vec![
        WorkloadSpec::Serial {
            count: 25,
            interval: s(20),
        },
        WorkloadSpec::Parallel {
            threads: 6,
            per_thread: 5,
            interval: s(40),
        },
        WorkloadSpec::Linear {
            increasing: true,
            start: 2,
            step: 3,
            rounds: 7,
            round: s(30),
        },
        WorkloadSpec::Exponential {
            increasing: false,
            rounds: 6,
            round: s(30),
        },
        WorkloadSpec::Burst {
            base: 5,
            factor: 8,
            burst_at: vec![2, 5],
            rounds: 8,
            round: s(30),
        },
        WorkloadSpec::Poisson {
            rate: 1.5,
            duration: s(240),
            zipf: 1.1,
        },
        WorkloadSpec::Youtube {
            scale: 30.0,
            index: s(60),
            length: 48,
        },
        WorkloadSpec::Azure {
            functions: 12,
            duration: m(30),
        },
        WorkloadSpec::Synth {
            requests: 1500,
            keys: 40,
            duration: m(60),
            zipf: 1.1,
            peak: 3.0,
        },
        WorkloadSpec::FlashCrowd {
            requests: 1200,
            keys: 30,
            duration: m(45),
            zipf: 1.2,
            peak: 2.0,
            at: 0.3,
            width: 0.08,
            magnitude: 6.0,
        },
        WorkloadSpec::DeployWaves {
            requests: 1000,
            keys: 64,
            duration: m(40),
            zipf: 1.1,
            waves: 4,
            window: 16,
        },
        WorkloadSpec::MultiTenant {
            tenants: 3,
            requests: 400,
            keys: 20,
            duration: m(30),
            zipf: 1.1,
        },
        WorkloadSpec::AzureCsv {
            path: csv.to_string_lossy().into_owned(),
            interval: m(2),
        },
        WorkloadSpec::OpenDc {
            path: opendc.to_string_lossy().into_owned(),
        },
    ]
}

fn assert_parallel_equivalent(sc: &Scenario, label: &str) {
    let sequential =
        run_scenario(sc).unwrap_or_else(|e| panic!("{label}: sequential run failed: {e}"));
    let seq_render = sequential.render(true);
    let seq_json = sequential.metrics.to_json().to_pretty_string();
    for &threads in THREAD_COUNTS {
        let parallel = run_scenario_parallel(sc, threads)
            .unwrap_or_else(|e| panic!("{label} x{threads}: parallel run failed: {e}"));
        assert!(
            !parallel.limits_coupled,
            "{label} x{threads}: pool limits fired — fixture is not limits-quiescent"
        );
        assert!(
            seq_render == parallel.render(true),
            "{label} x{threads}: rendered reports differ\nsequential:\n{seq_render}\nparallel:\n{}",
            parallel.render(true)
        );
        let pj = parallel.metrics.to_json().to_pretty_string();
        assert!(
            seq_json == pj,
            "{label} x{threads}: metrics JSON differs ({} vs {} bytes)",
            seq_json.len(),
            pj.len()
        );
    }
}

#[test]
fn every_workload_variant_replays_identically_in_parallel() {
    for (i, workload) in all_variants().into_iter().enumerate() {
        let sc = scenario(ProviderSpec::HotC, 42, workload);
        assert_parallel_equivalent(&sc, &format!("variant #{i}"));
    }
}

#[test]
fn every_provider_replays_identically_in_parallel() {
    let providers = [
        ProviderSpec::HotC,
        ProviderSpec::HotCFuzzy,
        ProviderSpec::ColdStart,
        ProviderSpec::FixedKeepAlive(SimDuration::from_mins(10)),
        ProviderSpec::PeriodicWarmup(SimDuration::from_mins(5)),
        ProviderSpec::HybridKeepAlive,
    ];
    for provider in providers {
        let label = format!("{provider:?}");
        let sc = scenario(
            provider,
            7,
            WorkloadSpec::Synth {
                requests: 1200,
                keys: 32,
                duration: SimDuration::from_mins(45),
                zipf: 1.1,
                peak: 3.0,
            },
        );
        assert_parallel_equivalent(&sc, &label);
    }
}

/// Fault injection decomposes per configuration: each worker's engine draws
/// exactly the crash decisions the sequential engine would have dealt that
/// worker's configs, so a faulty replay is still byte-identical in parallel.
#[test]
fn crash_faults_decompose_across_workers() {
    let mut sc = scenario(
        ProviderSpec::HotC,
        11,
        WorkloadSpec::Poisson {
            rate: 2.0,
            duration: SimDuration::from_secs(300),
            zipf: 1.1,
        },
    );
    sc.crash_rate = 0.2;
    assert_parallel_equivalent(&sc, "poisson with faults");
}

/// The three stress scenario files from `scenarios/`, with their request
/// volumes scaled down to keep the debug-build test quick. Structure (replica
/// counts, seeds, ticks, merge shapes) is exactly the shipped scenarios'.
#[test]
fn stress_scenario_files_replay_identically_in_parallel() {
    for name in ["multi_tenant", "flash_crowd", "deploy_waves"] {
        let path = format!("{}/../../scenarios/{name}.hotc", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let mut sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        match &mut sc.workload {
            WorkloadSpec::MultiTenant { requests, .. }
            | WorkloadSpec::FlashCrowd { requests, .. }
            | WorkloadSpec::DeployWaves { requests, .. } => *requests = 4000,
            other => panic!("{name}: unexpected workload {other:?}"),
        }
        assert_parallel_equivalent(&sc, name);
    }
}
