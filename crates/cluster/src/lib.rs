#![warn(missing_docs)]

//! Multi-host HotC: the paper's §VII future work, built out.
//!
//! > "in a distributed system, a few containers are extremely popular and
//! > are invoked a lot while others may not be used often. Some host
//! > machines might become overloaded and we need to consider load balancing
//! > when reusing the hot runtime."
//!
//! A [`Cluster`] fronts several hosts, each running its own container engine
//! and HotC pool (one [`faas::Gateway`] per node). Incoming requests are
//! placed by a [`SchedulePolicy`]:
//!
//! * [`SchedulePolicy::RoundRobin`] — classic rotation; oblivious to both
//!   load and pooled runtimes, it smears every runtime type across all
//!   nodes (each node cold-starts its own copy).
//! * [`SchedulePolicy::LeastLoaded`] — place on the node with the fewest
//!   in-flight requests; balances load but still ignores the pools.
//! * [`SchedulePolicy::ReuseAffinity`] — prefer a node holding an *available
//!   warm runtime* of the request's type, breaking ties toward the least
//!   loaded node, and falling back to least-loaded when nobody is warm. An
//!   overload guard keeps affinity from melting a hot node: if the preferred
//!   node's in-flight load exceeds the cluster mean by more than
//!   [`Cluster::OVERLOAD_FACTOR`]×, the request spills to the least-loaded
//!   node instead (accepting one cold start to protect latency).
//! * [`SchedulePolicy::CostAware`] — estimate each node's completion time
//!   (cold-start cost, zero when warm, plus execution at the node's speed)
//!   and pick the minimum; the right policy for *heterogeneous* cloudlets
//!   where warm affinity would pin heavy work to a slow edge node.
//!
//! Warm-reading policies (reuse affinity *and* cost-aware) consult warm
//! availability through a periodically synchronized replicated view
//! ([`Cluster::set_warm_view_staleness`]), modelling the §VII distributed
//! key-value store and its staleness cost.
//!
//! Placement state is indexed, not scanned: a [`warm_index::WarmIndex`] of
//! per-key believed-warm host lists maintained by placement debits and sync
//! events, plus a [`load::LoadIndex`] picking fallback nodes by
//! power-of-two-choices — a placement costs O(1) amortized at 1024 hosts /
//! 10k functions (DESIGN §9). [`reference::ReferenceCluster`] retains the
//! naive scan-everything semantics as an executable spec; the
//! `indexed_matches_reference` property test holds the two to
//! decision-for-decision agreement.
//!
//! The `repro cluster` and `repro cloudlet` experiments compare the policies
//! under Zipf-skewed and heterogeneous workloads; `tests/cluster.rs` asserts
//! the expected orderings (affinity ⇒ fewest cold starts and containers on a
//! homogeneous cluster; cost-aware ⇒ best heavy-class latency on a
//! cloudlet).

pub mod load;
pub mod reference;
pub mod sched;
pub mod warm_index;

pub use reference::{RefInFlight, ReferenceCluster};
pub use sched::{
    Cluster, ClusterError, ClusterInFlight, ClusterStats, NodeSnapshot, SchedulePolicy,
};
