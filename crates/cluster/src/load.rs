//! Per-node load index: in-flight counts plus power-of-two-choices.
//!
//! Replaces the old `least_loaded()` full min-scan, which walked every node
//! *and* allocated a tie `Vec` per placement. The index keeps the running
//! total so the overload-guard mean is O(1), and picks nodes by
//! power-of-two-choices: sample two nodes uniformly, keep the less loaded.
//! P2C's max-load bound (`log log n` above the mean, Azar et al.) is enough
//! for placement; a 1024-host decision costs two RNG draws and two loads
//! instead of a 1024-element scan.

use simclock::SimRng;

/// In-flight request counts per node, with the running total.
#[derive(Debug, Clone)]
pub struct LoadIndex {
    loads: Vec<u32>,
    total: u64,
}

impl LoadIndex {
    /// An all-idle index over `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        LoadIndex {
            loads: vec![0; nodes],
            total: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the index tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Current in-flight count of one node.
    pub fn load(&self, node: usize) -> u32 {
        self.loads[node]
    }

    /// Records a placement on `node`.
    pub fn inc(&mut self, node: usize) {
        self.loads[node] += 1;
        self.total += 1;
    }

    /// Records a completion on `node`.
    pub fn dec(&mut self, node: usize) {
        debug_assert!(self.loads[node] > 0, "completion without a placement");
        self.loads[node] = self.loads[node].saturating_sub(1);
        self.total = self.total.saturating_sub(1);
    }

    /// Mean in-flight load across all nodes (0.0 for an empty index).
    pub fn mean(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.loads.len() as f64
    }

    /// Power-of-two-choices: sample two nodes, return the less loaded (the
    /// first draw on a tie). Always consumes **exactly two** RNG draws, so
    /// an independent implementation fed the same seed makes the same
    /// sequence of decisions — the property test's reference scheduler
    /// depends on this. Must not be called on an empty index.
    pub fn pick_p2c(&self, rng: &mut SimRng) -> usize {
        let a = rng.index(self.loads.len());
        let b = rng.index(self.loads.len());
        if self.loads[b] < self.loads[a] {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_track_inc_dec() {
        let mut idx = LoadIndex::new(4);
        idx.inc(1);
        idx.inc(1);
        idx.inc(3);
        assert_eq!(idx.load(1), 2);
        assert_eq!(idx.load(3), 1);
        assert!((idx.mean() - 0.75).abs() < 1e-12);
        idx.dec(1);
        assert_eq!(idx.load(1), 1);
        assert!((idx.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p2c_prefers_the_less_loaded_sample() {
        // One node is heavily loaded: P2C must send almost everything
        // elsewhere (it picks the hot node only when both draws hit it).
        let mut idx = LoadIndex::new(8);
        for _ in 0..100 {
            idx.inc(0);
        }
        let mut rng = SimRng::seeded(7);
        let mut hot = 0;
        for _ in 0..1000 {
            if idx.pick_p2c(&mut rng) == 0 {
                hot += 1;
            }
        }
        // P(both draws = node 0) = 1/64 ≈ 16 of 1000.
        assert!(hot < 40, "hot node picked {hot}/1000 times");
    }

    #[test]
    fn p2c_consumes_exactly_two_draws() {
        let idx = LoadIndex::new(5);
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        idx.pick_p2c(&mut a);
        b.index(5);
        b.index(5);
        // Same stream position afterwards: the next draws agree.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn p2c_balances_under_feedback() {
        // Placing where P2C points keeps the spread tight.
        let mut idx = LoadIndex::new(16);
        let mut rng = SimRng::seeded(2021);
        for _ in 0..16 * 100 {
            let n = idx.pick_p2c(&mut rng);
            idx.inc(n);
        }
        let max = (0..16).map(|i| idx.load(i)).max().unwrap_or(0);
        let min = (0..16).map(|i| idx.load(i)).min().unwrap_or(0);
        assert!(max - min <= 8, "spread {min}..{max}");
    }
}
