//! Indexed warm-placement store: per-function host lists, maintained by
//! events instead of rebuilt-by-scan snapshots.
//!
//! The old scheduler kept `snapshot[node]: HashMap<String, usize>` and
//! rebuilt every map on each sync — O(hosts × functions) per sync and an
//! O(hosts) filter per placement. The index inverts that: `rows[key]` lists
//! exactly the hosts *believed* to hold a warm runtime for that key, so a
//! reuse-affinity placement scans only the (typically few) warm candidates,
//! and the counts are adjusted in place by three kinds of events:
//!
//! - **placement debits** (`debit`): a request routed to a believed-warm
//!   host consumes one believed slot immediately, before any sync — the
//!   stale-view stampede fix;
//! - **point touches** (`touch_true`): one (key, host) count refreshed from
//!   the host's pool, used by the zero-staleness oracle after every begin
//!   and finish;
//! - **node resyncs** (`resync_node`): one host's full warm set replaced
//!   from its pool, used by staleness-window syncs and by the oracle after
//!   cold starts and epoch-drift ticks (the pool's `mutation_epoch` tells
//!   us when a resync would be a no-op).
//!
//! Cluster-wide keys are interned once (`hotc::KeyId` from the cluster's
//! own [`hotc::KeyInterner`]); each node's pool interns the same
//! configuration independently, so the index keeps per-node id translations
//! (`c2l`/`l2c`), filled lazily on first placement.
//!
//! Invariants:
//! - `rows[k]` holds at most one entry per node, every entry has count > 0,
//!   and node `n` appears in `rows[k]` iff `k ∈ nodes[n].keys` — so a node
//!   resync touches only rows that actually mention the node.
//! - With zero staleness, after every `Cluster` operation the believed
//!   count for any (key, node) the cluster has placed equals the node
//!   pool's live available count for that key (the oracle invariant).

use containersim::ContainerConfig;
use hotc::{KeyId, KeyInterner, ShardedPool};
use stdshim::{FastMap, FastSet};

use crate::load::LoadIndex;

/// Per-node bookkeeping: key-id translations and which cluster keys this
/// node currently contributes believed-warm entries for.
#[derive(Debug, Default)]
struct NodeView {
    /// Cluster key index → this node's pool-local [`KeyId`].
    c2l: FastMap<u32, KeyId>,
    /// Pool-local key index → cluster key index.
    l2c: FastMap<u32, u32>,
    /// Cluster key indices with a (count > 0) entry for this node in `rows`.
    keys: FastSet<u32>,
    /// The node pool's `mutation_epoch` as of the last resync.
    epoch: u64,
}

/// The indexed warm-placement store. See the module docs for the protocol.
#[derive(Debug, Default)]
pub struct WarmIndex {
    /// `rows[cluster key index]` = hosts believed warm for that key, as
    /// `(node, believed available count)` with count > 0.
    rows: Vec<Vec<(u32, u32)>>,
    nodes: Vec<NodeView>,
}

impl WarmIndex {
    /// An empty index.
    pub fn new() -> Self {
        WarmIndex::default()
    }

    /// Grows the per-key row table to cover `keys` interned cluster keys.
    pub fn ensure_rows(&mut self, keys: usize) {
        if self.rows.len() < keys {
            self.rows.resize_with(keys, Vec::new);
        }
    }

    /// Grows the per-node table to cover `nodes` nodes.
    pub fn ensure_nodes(&mut self, nodes: usize) {
        if self.nodes.len() < nodes {
            self.nodes.resize_with(nodes, NodeView::default);
        }
    }

    /// Records the translation between cluster key `k` and `node`'s
    /// pool-local id for the same configuration. Interns into the node's
    /// pool only on first sight of (k, node); repeats are one map probe.
    pub fn ensure_mapping(
        &mut self,
        k: KeyId,
        node: usize,
        pool: &ShardedPool,
        config: &ContainerConfig,
    ) {
        let view = &mut self.nodes[node];
        let ck = k.index() as u32;
        if view.c2l.contains_key(&ck) {
            return;
        }
        let local = pool.intern_config(config);
        view.c2l.insert(ck, local);
        view.l2c.insert(local.index() as u32, ck);
    }

    /// Believed warm-available count for (`k`, `node`). O(warm hosts of k).
    pub fn believed(&self, k: KeyId, node: usize) -> u32 {
        self.rows
            .get(k.index())
            .and_then(|row| row.iter().find(|e| e.0 == node as u32))
            .map(|e| e.1)
            .unwrap_or(0)
    }

    /// Optimistically consumes one believed-warm slot on `node` — the
    /// placement debit. No-op if the index already believes zero.
    pub fn debit(&mut self, k: KeyId, node: usize) {
        let Some(row) = self.rows.get_mut(k.index()) else {
            return;
        };
        let Some(pos) = row.iter().position(|e| e.0 == node as u32) else {
            return;
        };
        if row[pos].1 > 1 {
            row[pos].1 -= 1;
        } else {
            row.swap_remove(pos);
            self.nodes[node].keys.remove(&(k.index() as u32));
        }
    }

    /// Replaces the believed count for (`k`, `node`) with the node pool's
    /// live count — a point touch. Requires the mapping to exist.
    pub fn touch_true(&mut self, k: KeyId, node: usize, pool: &ShardedPool) {
        let ck = k.index() as u32;
        let count = match self.nodes[node].c2l.get(&ck) {
            Some(&local) => pool.num_avail_id(local) as u32,
            None => 0,
        };
        let row = &mut self.rows[k.index()];
        let pos = row.iter().position(|e| e.0 == node as u32);
        match (pos, count) {
            (Some(p), 0) => {
                row.swap_remove(p);
                self.nodes[node].keys.remove(&ck);
            }
            (Some(p), c) => row[p].1 = c,
            (None, 0) => {}
            (None, c) => {
                row.push((node as u32, c));
                self.nodes[node].keys.insert(ck);
            }
        }
    }

    /// Replaces `node`'s entire believed warm set with its pool's live
    /// state — a sync event. O(keys currently/previously warm on the node),
    /// never O(cluster). Warm keys without a cached translation (the node
    /// acquired them outside this cluster's placements, e.g. by a local
    /// prewarm) are resolved once through `interner` — keys the cluster has
    /// never registered stay invisible, since it could not route to them
    /// anyway. Assumes node pools share the cluster interner's
    /// [`hotc::KeyPolicy`].
    pub fn resync_node(&mut self, node: usize, pool: &ShardedPool, interner: &KeyInterner) {
        let WarmIndex { rows, nodes } = self;
        let view = &mut nodes[node];
        // Read the epoch before scanning: a mutation racing the scan then
        // re-dirties the node instead of being lost.
        view.epoch = pool.mutation_epoch();
        for ck in view.keys.drain() {
            let row = &mut rows[ck as usize];
            if let Some(pos) = row.iter().position(|e| e.0 == node as u32) {
                row.swap_remove(pos);
            }
        }
        pool.for_each_warm(|local, avail| {
            let li = local.index() as u32;
            let ck = match view.l2c.get(&li) {
                Some(&ck) => ck,
                None => {
                    let Some(ck) = pool
                        .resolve_key(local)
                        .and_then(|key| interner.lookup(&key))
                        .map(|k| k.index() as u32)
                    else {
                        return;
                    };
                    view.l2c.insert(li, ck);
                    view.c2l.insert(ck, local);
                    ck
                }
            };
            rows[ck as usize].push((node as u32, avail as u32));
            view.keys.insert(ck);
        });
    }

    /// The node pool's `mutation_epoch` as of the last [`Self::resync_node`].
    /// An equal live epoch means a resync would find nothing new.
    pub fn node_epoch(&self, node: usize) -> u64 {
        self.nodes[node].epoch
    }

    /// The best believed-warm host for `k`: minimum (in-flight load, node
    /// index) over the key's row. Scans only believed-warm hosts; the
    /// (load, node) order is total, so the result is independent of row
    /// order — a naive all-nodes scan picks the same host.
    pub fn best_warm(&self, k: KeyId, load: &LoadIndex) -> Option<usize> {
        self.rows
            .get(k.index())?
            .iter()
            .filter(|e| e.1 > 0)
            .map(|e| e.0 as usize)
            .min_by_key(|&n| (load.load(n), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
    use hotc::{KeyInterner, KeyPolicy};
    use simclock::SimTime;
    use stdshim::Mutex;

    fn config(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    fn pool_with_warm(cfg: &ContainerConfig, count: usize) -> ShardedPool {
        let pool = ShardedPool::new(KeyPolicy::Exact);
        let engine = Mutex::new(ContainerEngine::with_local_images(HardwareProfile::server()));
        for _ in 0..count {
            pool.prewarm(&engine, cfg, SimTime::ZERO).unwrap();
        }
        pool
    }

    #[test]
    fn resync_picks_up_prewarmed_counts_and_debit_consumes_them() {
        let cfg = config("python:3.8-alpine");
        let interner = KeyInterner::new(KeyPolicy::Exact);
        let k = interner.intern(&cfg);
        let pool = pool_with_warm(&cfg, 2);

        let mut idx = WarmIndex::new();
        idx.ensure_rows(1);
        idx.ensure_nodes(1);
        idx.ensure_mapping(k, 0, &pool, &cfg);
        assert_eq!(idx.believed(k, 0), 0, "nothing believed before a sync");

        idx.resync_node(0, &pool, &interner);
        assert_eq!(idx.believed(k, 0), 2);
        assert_eq!(idx.node_epoch(0), pool.mutation_epoch());

        idx.debit(k, 0);
        assert_eq!(idx.believed(k, 0), 1);
        idx.debit(k, 0);
        assert_eq!(idx.believed(k, 0), 0);
        // Over-debit is a no-op, not an underflow.
        idx.debit(k, 0);
        assert_eq!(idx.believed(k, 0), 0);
        assert_eq!(idx.best_warm(k, &LoadIndex::new(1)), None);
    }

    #[test]
    fn touch_true_tracks_the_pool_both_ways() {
        let cfg = config("python:3.8-alpine");
        let interner = KeyInterner::new(KeyPolicy::Exact);
        let k = interner.intern(&cfg);
        let pool = pool_with_warm(&cfg, 1);

        let mut idx = WarmIndex::new();
        idx.ensure_rows(1);
        idx.ensure_nodes(1);
        idx.ensure_mapping(k, 0, &pool, &cfg);

        idx.touch_true(k, 0, &pool);
        assert_eq!(idx.believed(k, 0), 1);

        // Debit to zero, then a touch restores the live truth.
        idx.debit(k, 0);
        assert_eq!(idx.believed(k, 0), 0);
        idx.touch_true(k, 0, &pool);
        assert_eq!(idx.believed(k, 0), 1);
    }

    #[test]
    fn epoch_gates_resyncs() {
        let cfg = config("python:3.8-alpine");
        let interner = KeyInterner::new(KeyPolicy::Exact);
        let k = interner.intern(&cfg);
        let pool = pool_with_warm(&cfg, 1);
        let engine = Mutex::new(ContainerEngine::with_local_images(HardwareProfile::server()));

        let mut idx = WarmIndex::new();
        idx.ensure_rows(1);
        idx.ensure_nodes(1);
        idx.ensure_mapping(k, 0, &pool, &cfg);
        idx.resync_node(0, &pool, &interner);
        assert_eq!(
            idx.node_epoch(0),
            pool.mutation_epoch(),
            "idle pool: a resync would be a no-op"
        );

        pool.prewarm(&engine, &cfg, SimTime::ZERO).unwrap();
        assert_ne!(
            idx.node_epoch(0),
            pool.mutation_epoch(),
            "mutation drifts the epoch"
        );
        idx.resync_node(0, &pool, &interner);
        assert_eq!(idx.believed(k, 0), 2);
    }

    #[test]
    fn best_warm_prefers_least_loaded_then_lowest_index() {
        let cfg = config("python:3.8-alpine");
        let interner = KeyInterner::new(KeyPolicy::Exact);
        let k = interner.intern(&cfg);
        let pools: Vec<ShardedPool> = (0..3).map(|_| pool_with_warm(&cfg, 1)).collect();

        let mut idx = WarmIndex::new();
        idx.ensure_rows(1);
        idx.ensure_nodes(3);
        for (n, pool) in pools.iter().enumerate() {
            idx.ensure_mapping(k, n, pool, &cfg);
            idx.resync_node(n, pool, &interner);
        }

        let mut load = LoadIndex::new(3);
        assert_eq!(idx.best_warm(k, &load), Some(0), "all idle: lowest index");
        load.inc(0);
        assert_eq!(idx.best_warm(k, &load), Some(1), "skip the loaded node");
        load.inc(1);
        load.inc(2);
        load.inc(2);
        assert_eq!(idx.best_warm(k, &load), Some(0), "back to the 1-load tie");
    }

    #[test]
    fn distinct_keys_keep_distinct_rows() {
        let a = config("python:3.8-alpine");
        let b = config("golang:1.13");
        let interner = KeyInterner::new(KeyPolicy::Exact);
        let ka = interner.intern(&a);
        let kb = interner.intern(&b);
        let pool = pool_with_warm(&a, 1);

        let mut idx = WarmIndex::new();
        idx.ensure_rows(2);
        idx.ensure_nodes(1);
        idx.ensure_mapping(ka, 0, &pool, &a);
        idx.ensure_mapping(kb, 0, &pool, &b);
        idx.resync_node(0, &pool, &interner);
        assert_eq!(idx.believed(ka, 0), 1);
        assert_eq!(idx.believed(kb, 0), 0);
    }
}
