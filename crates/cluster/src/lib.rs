#![warn(missing_docs)]

//! Multi-host HotC: the paper's §VII future work, built out.
//!
//! > "in a distributed system, a few containers are extremely popular and
//! > are invoked a lot while others may not be used often. Some host
//! > machines might become overloaded and we need to consider load balancing
//! > when reusing the hot runtime."
//!
//! A [`Cluster`] fronts several hosts, each running its own container engine
//! and HotC pool (one [`faas::Gateway`] per node). Incoming requests are
//! placed by a [`SchedulePolicy`]:
//!
//! * [`SchedulePolicy::RoundRobin`] — classic rotation; oblivious to both
//!   load and pooled runtimes, it smears every runtime type across all
//!   nodes (each node cold-starts its own copy).
//! * [`SchedulePolicy::LeastLoaded`] — place on the node with the fewest
//!   in-flight requests; balances load but still ignores the pools.
//! * [`SchedulePolicy::ReuseAffinity`] — prefer a node holding an *available
//!   warm runtime* of the request's type, breaking ties toward the least
//!   loaded node, and falling back to least-loaded when nobody is warm. An
//!   overload guard keeps affinity from melting a hot node: if the preferred
//!   node's in-flight load exceeds the cluster mean by more than
//!   [`Cluster::OVERLOAD_FACTOR`]×, the request spills to the least-loaded
//!   node instead (accepting one cold start to protect latency).
//! * [`SchedulePolicy::CostAware`] — estimate each node's completion time
//!   (cold-start cost, zero when warm, plus execution at the node's speed)
//!   and pick the minimum; the right policy for *heterogeneous* cloudlets
//!   where warm affinity would pin heavy work to a slow edge node.
//!
//! Affinity can also read warm availability through a periodically
//! synchronized replicated view ([`Cluster::set_warm_view_staleness`]),
//! modelling the §VII distributed key-value store and its staleness cost.
//!
//! The `repro cluster` and `repro cloudlet` experiments compare the policies
//! under Zipf-skewed and heterogeneous workloads; `tests/cluster.rs` asserts
//! the expected orderings (affinity ⇒ fewest cold starts and containers on a
//! homogeneous cluster; cost-aware ⇒ best heavy-class latency on a
//! cloudlet).

pub mod sched;

pub use sched::{Cluster, ClusterError, ClusterStats, NodeSnapshot, SchedulePolicy};
