//! Extension experiment: keep-alive policy comparison on an Azure-style
//! multi-tenant workload (the §III-B industry-practice discussion, measured).
//!
//! A 20-function population (hot / periodic / rare classes) runs for four
//! simulated hours under each runtime manager. The interesting trade-off is
//! **cold-start fraction vs. warm-pool footprint**: a global fixed TTL
//! either wastes containers on rare types (long TTL) or cold-starts the
//! periodic types (short TTL); the Azure-style per-type hybrid window and
//! HotC's per-type pool both escape that dilemma.

use crate::driver::run_workload;
use crate::experiments::server_gateway;
use faas::gateway::FunctionSpec;
use faas::{
    AppProfile, ColdStartAlways, FixedKeepAlive, HybridKeepAlive, PeriodicWarmup, RuntimeProvider,
};
use hotc::HotC;
use metrics_lite::Table;
use simclock::SimDuration;
use workloads::azure::{azure_workload, AzureWorkloadParams, FunctionClass};
use workloads::Arrival;

/// One policy's outcome on the Azure-style workload.
pub struct KeepAliveEval {
    /// Policy name.
    pub policy: &'static str,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Overall cold fraction.
    pub cold_fraction: f64,
    /// Cold fraction among *rare* functions only (the hard class).
    pub rare_cold_fraction: f64,
    /// Time-averaged live containers (warm-pool footprint).
    pub mean_live: f64,
}

/// Result of the keep-alive comparison.
pub struct KeepAliveResult {
    /// Functions in the population.
    pub functions: usize,
    /// Requests served.
    pub requests: usize,
    /// Per-policy outcomes.
    pub evals: Vec<KeepAliveEval>,
}

fn eval<P: RuntimeProvider + 'static>(
    name: &'static str,
    provider: P,
    workload: &[Arrival],
    rare_ids: &[usize],
    functions: usize,
) -> KeepAliveEval {
    let mut gw = server_gateway(provider, &[]);
    for f in 0..functions {
        let app = AppProfile::random_number();
        let mut config = app.default_config();
        config.exec.env.insert("FN".into(), f.to_string());
        gw.register(
            FunctionSpec::from_app(app)
                .named(format!("fn-{f}"))
                .with_config(config),
        );
    }
    let out = run_workload(
        gw,
        workload,
        |id| format!("fn-{id}"),
        SimDuration::from_secs(30),
    );
    let rare_total = workload
        .iter()
        .filter(|a| rare_ids.contains(&a.config_id))
        .count();
    let rare_cold = workload
        .iter()
        .zip(&out.traces)
        .filter(|(a, t)| rare_ids.contains(&a.config_id) && t.cold)
        .count();
    KeepAliveEval {
        policy: name,
        mean_ms: out.mean_latency().as_millis_f64(),
        cold_fraction: out.cold_fraction(),
        rare_cold_fraction: rare_cold as f64 / rare_total.max(1) as f64,
        mean_live: out.mean_live_containers(),
    }
}

/// Runs the comparison.
pub fn run(seed: u64) -> KeepAliveResult {
    let params = AzureWorkloadParams {
        seed,
        // Four hours: enough invocations for per-type windows to be learned
        // even for the rare class (20–60 min gaps).
        duration: simclock::SimDuration::from_mins(240),
        ..Default::default()
    };
    let (workload, mixes) = azure_workload(&params);
    let rare_ids: Vec<usize> = mixes
        .iter()
        .filter(|m| m.class == FunctionClass::Rare)
        .map(|m| m.config_id)
        .collect();
    let functions = params.functions;

    let evals = vec![
        eval(
            "cold-start",
            ColdStartAlways::new(),
            &workload,
            &rare_ids,
            functions,
        ),
        eval(
            "fixed-keepalive(10m)",
            FixedKeepAlive::new(SimDuration::from_mins(10)),
            &workload,
            &rare_ids,
            functions,
        ),
        eval(
            "fixed-keepalive(60m)",
            FixedKeepAlive::new(SimDuration::from_mins(60)),
            &workload,
            &rare_ids,
            functions,
        ),
        eval(
            "periodic-warmup(5m)",
            PeriodicWarmup::new(SimDuration::from_mins(5)),
            &workload,
            &rare_ids,
            functions,
        ),
        eval(
            "hybrid-keepalive",
            HybridKeepAlive::new(),
            &workload,
            &rare_ids,
            functions,
        ),
        eval(
            "hotc",
            HotC::with_defaults(),
            &workload,
            &rare_ids,
            functions,
        ),
    ];
    KeepAliveResult {
        functions,
        requests: workload.len(),
        evals,
    }
}

impl KeepAliveResult {
    /// Looks up a policy's outcome.
    pub fn eval(&self, policy: &str) -> &KeepAliveEval {
        self.evals
            .iter()
            .find(|e| e.policy == policy)
            .expect("policy evaluated")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!(
                "Keep-alive policy comparison on an Azure-style population \
                 ({} functions, {} requests over 4 h)",
                self.functions, self.requests
            ),
            &[
                "policy",
                "mean_ms",
                "cold_frac",
                "rare_cold_frac",
                "mean_live_ctrs",
            ],
        );
        for e in &self.evals {
            table.row(&[
                e.policy.to_string(),
                format!("{:.1}", e.mean_ms),
                format!("{:.3}", e.cold_fraction),
                format!("{:.3}", e.rare_cold_fraction),
                format!("{:.1}", e.mean_live),
            ]);
        }
        let mut out = table.render();
        out.push_str(
            "(§III-B trade-off: a short global TTL cold-starts the rare class, a long one \
             inflates the pool; the per-type hybrid window beats the short TTL on rare colds \
             at nearly its footprint but needs long histories to learn exponential gaps; \
             HotC's demand-floored per-type pool matches the long TTL's hit rate)\n",
        );
        out
    }
}
