//! Failure injection: container processes crash mid-execution; every
//! provider must dispose of crashed containers and keep serving, with no
//! zombie volumes or leaked accounting.

use containersim::engine::ExecWork;
use containersim::{ContainerConfig, ContainerEngine, ContainerState, HardwareProfile, ImageId};
use faas::{AppProfile, FixedKeepAlive, Gateway};
use hotc::HotC;
use simclock::{SimDuration, SimTime};

fn crashy_engine(prob: f64, seed: u64) -> ContainerEngine {
    let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
    engine.set_fault_injection(prob, seed);
    engine
}

#[test]
fn crashed_container_is_stopped_and_disposable() {
    let mut engine = crashy_engine(1.0, 1); // always crash
    let cfg = ContainerConfig::bridge(ImageId::parse("alpine:3.12"));
    let (id, _) = engine.create_container(cfg, SimTime::ZERO).unwrap();
    let work = ExecWork::light(SimDuration::from_millis(100));

    let outcome = engine.begin_exec(id, work, SimTime::ZERO).unwrap();
    assert!(outcome.crashed);
    // The crash happens before the full execution would have completed.
    assert!(outcome.latency <= SimDuration::from_millis(101));
    engine
        .end_exec(id, SimTime::ZERO + outcome.latency)
        .unwrap();
    assert_eq!(engine.state(id), ContainerState::Stopped);

    // Stopped containers cannot run or be cleaned, only removed.
    assert!(engine.begin_exec(id, work, SimTime::ZERO).is_err());
    assert!(engine.cleanup(id, SimTime::ZERO).is_err());
    engine.stop_and_remove(id, SimTime::from_secs(1)).unwrap();
    assert_eq!(engine.volumes().len(), 0, "no zombie volume");
    assert_eq!(engine.live_count(), 0);
}

#[test]
fn zero_rate_never_crashes() {
    let mut engine = crashy_engine(0.0, 2);
    let cfg = ContainerConfig::bridge(ImageId::parse("alpine:3.12"));
    let (id, _) = engine.create_container(cfg, SimTime::ZERO).unwrap();
    for i in 0..50 {
        let out = engine
            .exec(
                id,
                ExecWork::light(SimDuration::from_millis(1)),
                SimTime::from_secs(i),
            )
            .unwrap();
        assert!(!out.crashed);
    }
}

#[test]
fn hotc_survives_crashes_and_stays_consistent() {
    let engine = crashy_engine(0.25, 42);
    let mut gw = Gateway::new(engine, HotC::with_defaults());
    gw.register_app(AppProfile::random_number());

    let mut failed = 0;
    let mut now = SimTime::ZERO;
    for _ in 0..200 {
        let trace = gw.handle("random-number", now).expect("request served");
        if trace.failed {
            failed += 1;
        }
        now = trace.t6_gateway_out + SimDuration::from_secs(1);
        gw.tick(now).expect("tick");
    }
    // Roughly a quarter of requests fail.
    assert!((25..80).contains(&failed), "failed={failed}");

    // Pool and engine agree; no zombie volumes; all remaining containers are
    // reusable (crashed ones were disposed).
    assert_eq!(gw.provider().pool().total_live(), gw.engine().live_count());
    assert_eq!(gw.engine().volumes().len(), gw.engine().live_count());
    assert_eq!(
        gw.provider().pool().total_available(),
        gw.engine().live_count()
    );
}

#[test]
fn keepalive_disposes_crashed_containers_too() {
    let engine = crashy_engine(1.0, 7);
    let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
    gw.register_app(AppProfile::random_number());

    let t1 = gw.handle("random-number", SimTime::ZERO).unwrap();
    assert!(t1.failed);
    // Nothing was shelved: the crashed container is gone.
    assert_eq!(gw.provider().warm_count(), 0);
    assert_eq!(gw.engine().live_count(), 0);

    // The next request cold-starts a fresh container.
    let t2 = gw.handle("random-number", SimTime::from_secs(1)).unwrap();
    assert!(t2.cold);
}

#[test]
fn crash_rate_shows_up_in_cold_fraction() {
    // Every crash forces the next same-type request to cold-start, so the
    // steady-state cold fraction tracks the crash rate.
    let run = |prob: f64| {
        let engine = crashy_engine(prob, 99);
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        gw.register_app(AppProfile::random_number());
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            let t = gw.handle("random-number", now).expect("request");
            now = t.t6_gateway_out + SimDuration::from_secs(1);
        }
        gw.stats().cold_starts
    };
    let stable = run(0.0);
    let flaky = run(0.3);
    assert_eq!(stable, 1);
    assert!(flaky > 15, "flaky={flaky}");
}

#[test]
fn crashes_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut engine = crashy_engine(0.5, seed);
        let cfg = ContainerConfig::bridge(ImageId::parse("alpine:3.12"));
        let mut outcomes = Vec::new();
        for i in 0..20 {
            let (id, _) = engine
                .create_container(cfg.clone(), SimTime::from_secs(i))
                .unwrap();
            let out = engine
                .exec(
                    id,
                    ExecWork::light(SimDuration::from_millis(10)),
                    SimTime::from_secs(i),
                )
                .unwrap();
            outcomes.push((out.crashed, out.latency));
        }
        outcomes
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
