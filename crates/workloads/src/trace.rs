//! Streaming trace frontend: pull-based arrival sources (ROADMAP item 3).
//!
//! Every other module in this crate materializes a full `Vec<Arrival>`,
//! which caps replay at what fits in memory. [`Trace`] is the lazy
//! alternative: a pull-based source of time-ordered [`Arrival`]s with
//! one-arrival lookahead (`peek`), modeled on the dslab-faas trace trait and
//! faas-sim's arrival-profile expansion. The CLI runner and the bench
//! replay driver consume `&mut dyn Trace` and never hold more than O(sources)
//! arrivals in flight, so a 1e8-request replay runs in constant memory.
//!
//! Producers:
//!
//! * **adapters** over the existing generators ([`serial_trace`],
//!   [`parallel_trace`], [`linear_ramp_trace`], [`exponential_ramp_trace`],
//!   [`burst_trace`], [`poisson_trace`], [`youtube_arrivals_trace`],
//!   [`azure_trace`]) — each emits the *byte-identical* arrival sequence of
//!   its materializing counterpart, verified by tests;
//! * **file readers** for Azure-Functions-style per-minute invocation counts
//!   ([`azure_csv_trace`]) and OpenDC-style invocation rows ([`OpenDcTrace`]);
//! * a seeded **synthesizer** ([`synth_trace`], [`multi_tenant_trace`]) that
//!   scales recorded shapes (flat / diurnal / flash crowd / deploy waves) to
//!   1e6–1e8 requests over 10k+ distinct keys in O(bins) memory.
//!
//! **Merge ordering invariant.** Multi-source traces are combined by
//! [`MergeTrace`], a k-way merge over the total order `(at, config_id,
//! source)`; within one source, emission order (`seq`) breaks the remaining
//! ties. Equal-timestamp ordering is therefore *defined*, not an accident of
//! a stable sort — the bug this module fixes in `azure.rs`/`youtube.rs`.

use crate::azure::{AzureWorkloadParams, FunctionClass, FunctionMix};
use crate::patterns::{round_start, Direction};
use crate::Arrival;
use simclock::{SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::io::BufRead;

/// A pull-based source of time-ordered arrivals.
///
/// Contract: `next_arrival` yields arrivals with non-decreasing `at`;
/// `peek` returns exactly what the next `next_arrival` will return without
/// consuming it. A source that hits an unrecoverable problem (only possible
/// for file-backed sources) fuses — returns `None` forever — and surfaces
/// the problem through [`Trace::take_error`]; drivers check it after the
/// stream ends instead of trusting a silent truncation.
pub trait Trace {
    /// The next arrival, without consuming it.
    fn peek(&mut self) -> Option<Arrival>;
    /// Pulls the next arrival.
    fn next_arrival(&mut self) -> Option<Arrival>;
    /// `(lower, Some(upper))` bounds on arrivals left, like
    /// `Iterator::size_hint`. Exact for counted sources, `(0, None)` for
    /// unbounded/streamed ones.
    fn remaining_hint(&self) -> (u64, Option<u64>);
    /// First error the source hit, if any (the source is fused after it).
    fn take_error(&mut self) -> Option<String> {
        None
    }
}

/// Materializes the remainder of a trace. Test/report helper — the replay
/// drivers deliberately never call this.
pub fn drain(trace: &mut dyn Trace) -> Vec<Arrival> {
    let (lo, _) = trace.remaining_hint();
    let mut out = Vec::with_capacity(lo.min(1 << 20) as usize);
    while let Some(a) = trace.next_arrival() {
        out.push(a);
    }
    out
}

/// A materialized workload behind the [`Trace`] interface (tests, and the
/// bridge for callers that already hold a `Vec<Arrival>`).
pub struct VecTrace {
    items: Vec<Arrival>,
    pos: usize,
}

impl VecTrace {
    /// Wraps a time-ordered workload.
    pub fn new(items: Vec<Arrival>) -> VecTrace {
        debug_assert!(crate::is_time_ordered(&items));
        VecTrace { items, pos: 0 }
    }
}

impl Trace for VecTrace {
    fn peek(&mut self) -> Option<Arrival> {
        self.items.get(self.pos).copied()
    }
    fn next_arrival(&mut self) -> Option<Arrival> {
        let out = self.items.get(self.pos).copied();
        if out.is_some() {
            self.pos += 1;
        }
        out
    }
    fn remaining_hint(&self) -> (u64, Option<u64>) {
        let left = (self.items.len() - self.pos) as u64;
        (left, Some(left))
    }
}

// ---------------------------------------------------------------------------
// Generator adapters: lazy counterparts of the `patterns`/`youtube`/`azure`
// materializers. Each wraps a private cursor type in `GenTrace`, which adds
// the one-arrival `peek` buffer the trait requires.
// ---------------------------------------------------------------------------

trait ArrivalGen {
    fn produce(&mut self) -> Option<Arrival>;
    fn remaining(&self) -> (u64, Option<u64>);
}

struct GenTrace<G> {
    head: Option<Arrival>,
    gen: G,
}

impl<G: ArrivalGen> GenTrace<G> {
    fn new(mut gen: G) -> GenTrace<G> {
        let head = gen.produce();
        GenTrace { head, gen }
    }
}

impl<G: ArrivalGen> Trace for GenTrace<G> {
    fn peek(&mut self) -> Option<Arrival> {
        self.head
    }
    fn next_arrival(&mut self) -> Option<Arrival> {
        let out = self.head.take();
        if out.is_some() {
            self.head = self.gen.produce();
        }
        out
    }
    fn remaining_hint(&self) -> (u64, Option<u64>) {
        let (lo, hi) = self.gen.remaining();
        let buffered = self.head.is_some() as u64;
        (
            lo.saturating_add(buffered),
            hi.map(|h| h.saturating_add(buffered)),
        )
    }
}

struct SerialGen {
    interval: SimDuration,
    count: u64,
    next: u64,
    config_id: usize,
}

impl ArrivalGen for SerialGen {
    fn produce(&mut self) -> Option<Arrival> {
        if self.next >= self.count {
            return None;
        }
        let at = round_start(self.interval, self.next);
        self.next += 1;
        Some(Arrival {
            at,
            config_id: self.config_id,
        })
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        let left = self.count - self.next;
        (left, Some(left))
    }
}

/// Lazy [`crate::patterns::serial`]: `count` arrivals of one config every
/// `interval`.
pub fn serial_trace(interval: SimDuration, count: usize, config_id: usize) -> impl Trace {
    GenTrace::new(SerialGen {
        interval,
        count: count as u64,
        next: 0,
        config_id,
    })
}

struct ParallelGen {
    threads: usize,
    per_thread: u64,
    interval: SimDuration,
    round: u64,
    thread: usize,
}

impl ArrivalGen for ParallelGen {
    fn produce(&mut self) -> Option<Arrival> {
        if self.round >= self.per_thread || self.threads == 0 {
            return None;
        }
        let out = Arrival {
            at: round_start(self.interval, self.round),
            config_id: self.thread,
        };
        self.thread += 1;
        if self.thread == self.threads {
            self.thread = 0;
            self.round += 1;
        }
        Some(out)
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        let rounds_left = self.per_thread - self.round;
        let left = rounds_left * self.threads as u64 - self.thread as u64;
        (left, Some(left))
    }
}

/// Lazy [`crate::patterns::parallel_clients`]: equal-instant arrivals are
/// emitted in thread (= config) order, matching the materializer and the
/// `(at, config_id, seq)` total order.
pub fn parallel_trace(threads: usize, per_thread: usize, interval: SimDuration) -> impl Trace {
    GenTrace::new(ParallelGen {
        threads,
        per_thread: per_thread as u64,
        interval,
        round: 0,
        thread: 0,
    })
}

enum RoundCounts {
    Linear {
        direction: Direction,
        start: u64,
        step: u64,
    },
    Exponential {
        direction: Direction,
    },
    Burst {
        base: u64,
        factor: u64,
        burst_rounds: Vec<usize>,
    },
}

impl RoundCounts {
    fn count(&self, r: u64, rounds: u64) -> u64 {
        match self {
            RoundCounts::Linear {
                direction,
                start,
                step,
            } => match direction {
                Direction::Increasing => start + step * r,
                Direction::Decreasing => start + step * (rounds - 1 - r),
            },
            RoundCounts::Exponential { direction } => {
                let exp = match direction {
                    Direction::Increasing => r,
                    Direction::Decreasing => rounds - 1 - r,
                };
                1u64 << exp.min(20)
            }
            RoundCounts::Burst {
                base,
                factor,
                burst_rounds,
            } => {
                if burst_rounds.contains(&(r as usize)) {
                    base * factor
                } else {
                    *base
                }
            }
        }
    }
}

struct RoundsGen {
    counts: RoundCounts,
    rounds: u64,
    round_interval: SimDuration,
    config_id: usize,
    r: u64,
    emitted_in_round: u64,
}

impl ArrivalGen for RoundsGen {
    fn produce(&mut self) -> Option<Arrival> {
        while self.r < self.rounds {
            let n = self.counts.count(self.r, self.rounds);
            if self.emitted_in_round < n {
                self.emitted_in_round += 1;
                return Some(Arrival {
                    at: round_start(self.round_interval, self.r),
                    config_id: self.config_id,
                });
            }
            self.r += 1;
            self.emitted_in_round = 0;
        }
        None
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        (0, None)
    }
}

/// Lazy [`crate::patterns::linear_ramp`].
pub fn linear_ramp_trace(
    direction: Direction,
    start: usize,
    step: usize,
    rounds: usize,
    round_interval: SimDuration,
    config_id: usize,
) -> impl Trace {
    GenTrace::new(RoundsGen {
        counts: RoundCounts::Linear {
            direction,
            start: start as u64,
            step: step as u64,
        },
        rounds: rounds as u64,
        round_interval,
        config_id,
        r: 0,
        emitted_in_round: 0,
    })
}

/// Lazy [`crate::patterns::exponential_ramp`].
pub fn exponential_ramp_trace(
    direction: Direction,
    rounds: u32,
    round_interval: SimDuration,
    config_id: usize,
) -> impl Trace {
    GenTrace::new(RoundsGen {
        counts: RoundCounts::Exponential { direction },
        rounds: rounds as u64,
        round_interval,
        config_id,
        r: 0,
        emitted_in_round: 0,
    })
}

/// Lazy [`crate::patterns::burst`].
pub fn burst_trace(
    base: usize,
    burst_factor: usize,
    burst_rounds: Vec<usize>,
    rounds: usize,
    round_interval: SimDuration,
    config_id: usize,
) -> impl Trace {
    GenTrace::new(RoundsGen {
        counts: RoundCounts::Burst {
            base: base as u64,
            factor: burst_factor as u64,
            burst_rounds,
        },
        rounds: rounds as u64,
        round_interval,
        config_id,
        r: 0,
        emitted_in_round: 0,
    })
}

struct PoissonGen {
    rng: SimRng,
    rate_per_sec: f64,
    t: f64,
    horizon: f64,
    config_kinds: usize,
    zipf_exponent: f64,
    done: bool,
}

impl ArrivalGen for PoissonGen {
    fn produce(&mut self) -> Option<Arrival> {
        if self.done {
            return None;
        }
        // Identical draw order to `patterns::poisson`: one exponential gap,
        // then one Zipf config draw, per arrival.
        self.t += self.rng.exponential(1.0 / self.rate_per_sec);
        if self.t >= self.horizon {
            self.done = true;
            return None;
        }
        Some(Arrival {
            at: SimTime::ZERO + SimDuration::from_secs_f64(self.t),
            config_id: self.rng.zipf(self.config_kinds, self.zipf_exponent),
        })
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        (0, None)
    }
}

/// Lazy [`crate::patterns::poisson`]: same seed ⇒ byte-identical arrivals.
pub fn poisson_trace(
    rate_per_sec: f64,
    duration: SimDuration,
    config_kinds: usize,
    zipf_exponent: f64,
    seed: u64,
) -> impl Trace {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    assert!(config_kinds >= 1, "need at least one config kind");
    GenTrace::new(PoissonGen {
        rng: SimRng::seeded(seed),
        rate_per_sec,
        t: 0.0,
        horizon: duration.as_secs_f64(),
        config_kinds,
        zipf_exponent,
        done: false,
    })
}

struct YoutubeGen {
    rates: Vec<f64>,
    index_width: SimDuration,
    config_id: usize,
    rng: SimRng,
    idx: usize,
    buf: VecDeque<Arrival>,
}

impl ArrivalGen for YoutubeGen {
    fn produce(&mut self) -> Option<Arrival> {
        loop {
            if let Some(a) = self.buf.pop_front() {
                return Some(a);
            }
            if self.idx >= self.rates.len() {
                return None;
            }
            // One index at a time — the only buffering the youtube shape
            // needs, because offsets within an index are sorted post-draw.
            // Draw order matches `youtube::expand_to_arrivals` exactly.
            let rate = self.rates[self.idx];
            let n = self.rng.poisson(rate);
            let start = round_start(self.index_width, self.idx as u64);
            let mut offsets: Vec<u64> = (0..n)
                .map(|_| self.rng.uniform_u64(0, self.index_width.as_nanos().max(1)))
                .collect();
            offsets.sort_unstable();
            self.buf.extend(offsets.into_iter().map(|off| Arrival {
                at: start + SimDuration::from_nanos(off),
                config_id: self.config_id,
            }));
            self.idx += 1;
        }
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        (self.buf.len() as u64, None)
    }
}

/// Lazy [`crate::youtube::expand_to_arrivals`] over a rate series: buffers a
/// single index (≈ the per-minute arrival count), not the whole day.
pub fn youtube_arrivals_trace(
    rates: Vec<f64>,
    index_width: SimDuration,
    config_id: usize,
    seed: u64,
) -> impl Trace {
    GenTrace::new(YoutubeGen {
        rates,
        index_width,
        config_id,
        rng: SimRng::seeded(seed),
        idx: 0,
        buf: VecDeque::new(),
    })
}

// ---------------------------------------------------------------------------
// K-way merge.
// ---------------------------------------------------------------------------

/// Deterministic k-way merge of time-ordered sources under the total order
/// `(at, config_id, source index)`; within one source, emission order (`seq`)
/// breaks remaining ties. One heap entry per source ⇒ O(sources) memory and
/// O(log sources) per arrival.
pub struct MergeTrace {
    sources: Vec<Box<dyn Trace>>,
    heap: BinaryHeap<Reverse<(SimTime, usize, usize)>>,
    error: Option<String>,
}

impl MergeTrace {
    /// Builds the merge; each source must be individually time-ordered (an
    /// out-of-order source is fused mid-stream and reported via
    /// [`Trace::take_error`]).
    pub fn new(mut sources: Vec<Box<dyn Trace>>) -> MergeTrace {
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (i, s) in sources.iter_mut().enumerate() {
            if let Some(a) = s.peek() {
                heap.push(Reverse((a.at, a.config_id, i)));
            }
        }
        MergeTrace {
            sources,
            heap,
            error: None,
        }
    }
}

impl Trace for MergeTrace {
    fn peek(&mut self) -> Option<Arrival> {
        self.heap.peek().map(|Reverse((at, config_id, _))| Arrival {
            at: *at,
            config_id: *config_id,
        })
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        let Reverse((at, config_id, src)) = self.heap.pop()?;
        let source = &mut self.sources[src];
        // The heap entry was this source's peeked head; consume it.
        let out = match source.next_arrival() {
            Some(a) => a,
            // A source whose peek/next disagree is broken; report rather
            // than panic (library code), and emit the peeked view so the
            // merged stream stays ordered.
            None => {
                if self.error.is_none() {
                    self.error = Some(format!("merge source {src} retracted its peeked arrival"));
                }
                Arrival { at, config_id }
            }
        };
        if let Some(next) = source.peek() {
            if next.at < at {
                if self.error.is_none() {
                    self.error = Some(format!(
                        "merge source {src} emitted out-of-order arrival ({} after {})",
                        next.at, at
                    ));
                }
                // Fuse the misbehaving source: do not re-insert it.
            } else {
                self.heap.push(Reverse((next.at, next.config_id, src)));
            }
        }
        Some(out)
    }

    fn remaining_hint(&self) -> (u64, Option<u64>) {
        let mut lo = 0u64;
        let mut hi = Some(0u64);
        for s in &self.sources {
            let (slo, shi) = s.remaining_hint();
            lo = lo.saturating_add(slo);
            hi = match (hi, shi) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            };
        }
        (lo, hi)
    }

    fn take_error(&mut self) -> Option<String> {
        if let Some(e) = self.error.take() {
            return Some(e);
        }
        for s in &mut self.sources {
            if let Some(e) = s.take_error() {
                return Some(e);
            }
        }
        None
    }
}

/// Wraps a trace, remapping every `config_id` to `config_id % modulo` (how
/// the CLI folds a synthesized population onto its declared functions). The
/// merge order of the inner trace is preserved — remapping happens on the
/// way out, exactly like the materialized runner remapped after sorting.
pub struct ConfigModulo<T> {
    inner: T,
    modulo: usize,
}

impl<T: Trace> ConfigModulo<T> {
    /// Wraps `inner`; `modulo` must be positive.
    pub fn new(inner: T, modulo: usize) -> ConfigModulo<T> {
        assert!(modulo > 0, "modulo must be positive");
        ConfigModulo { inner, modulo }
    }
    fn map(&self, a: Arrival) -> Arrival {
        Arrival {
            at: a.at,
            config_id: a.config_id % self.modulo,
        }
    }
}

impl<T: Trace> Trace for ConfigModulo<T> {
    fn peek(&mut self) -> Option<Arrival> {
        self.inner.peek().map(|a| self.map(a))
    }
    fn next_arrival(&mut self) -> Option<Arrival> {
        self.inner.next_arrival().map(|a| self.map(a))
    }
    fn remaining_hint(&self) -> (u64, Option<u64>) {
        self.inner.remaining_hint()
    }
    fn take_error(&mut self) -> Option<String> {
        self.inner.take_error()
    }
}

/// Restricts a trace to the arrivals one parallel replay worker owns, while
/// tracking enough global state for the worker to stay on the sequential
/// driver's schedule.
///
/// `assign` maps each *slot* (`config_id % assign.len()`, the same fold the
/// CLI route applies) to a worker index; arrivals owned by other workers are
/// consumed and discarded. Two global facts survive the filtering:
///
/// * [`PartitionTrace::next_indexed`] yields each arrival together with its
///   index in the *underlying* stream, so per-request sequence numbers (and
///   therefore finish tie-breaking and detail ordering) match the sequential
///   driver exactly;
/// * [`PartitionTrace::horizon_basis`] reports the timestamp of the last
///   arrival consumed from the underlying stream. Once this partition is
///   exhausted the whole underlying stream has been drained, so every worker
///   — including ones that own no arrivals at all — derives the *same* tick
///   horizon the sequential driver would.
///
/// Error semantics are as loud as the rest of the module: `take_error`
/// passes straight through, so a partition over a corrupt file source fails
/// the replay exactly like the sequential path does.
pub struct PartitionTrace<T> {
    inner: T,
    assign: std::sync::Arc<Vec<usize>>,
    worker: usize,
    /// Next owned arrival plus its global (underlying-stream) index.
    head: Option<(Arrival, u64)>,
    /// Global index of the next arrival pulled from `inner`.
    next_index: u64,
    /// Timestamp of the last arrival consumed from `inner` (any worker).
    underlying_last_at: Option<SimTime>,
}

impl<T: Trace> PartitionTrace<T> {
    /// Wraps `inner` as worker `worker`'s slice of the stream. `assign` maps
    /// slot index to worker index and must be non-empty.
    pub fn new(inner: T, assign: std::sync::Arc<Vec<usize>>, worker: usize) -> PartitionTrace<T> {
        assert!(!assign.is_empty(), "slot assignment must be non-empty");
        PartitionTrace {
            inner,
            assign,
            worker,
            head: None,
            next_index: 0,
            underlying_last_at: None,
        }
    }

    fn fill(&mut self) {
        if self.head.is_some() {
            return;
        }
        while let Some(a) = self.inner.next_arrival() {
            let idx = self.next_index;
            self.next_index += 1;
            self.underlying_last_at = Some(a.at);
            if self.assign[a.config_id % self.assign.len()] == self.worker {
                self.head = Some((a, idx));
                return;
            }
        }
    }

    /// Pulls the next owned arrival together with its global index in the
    /// underlying stream.
    pub fn next_indexed(&mut self) -> Option<(Arrival, u64)> {
        self.fill();
        self.head.take()
    }

    /// Timestamp of the last arrival consumed from the underlying stream,
    /// `None` if the stream was empty (or nothing has been pulled yet).
    /// Final — i.e. the global last-arrival time — once `peek` returns
    /// `None`, which is exactly when the replay driver asks for it.
    pub fn horizon_basis(&self) -> Option<SimTime> {
        self.underlying_last_at
    }
}

impl<T: Trace> Trace for PartitionTrace<T> {
    fn peek(&mut self) -> Option<Arrival> {
        self.fill();
        self.head.map(|(a, _)| a)
    }
    fn next_arrival(&mut self) -> Option<Arrival> {
        self.next_indexed().map(|(a, _)| a)
    }
    fn remaining_hint(&self) -> (u64, Option<u64>) {
        // Ownership of unread arrivals is unknown until they are pulled.
        let buffered = self.head.is_some() as u64;
        let (_, hi) = self.inner.remaining_hint();
        (buffered, hi.map(|h| h.saturating_add(buffered)))
    }
    fn take_error(&mut self) -> Option<String> {
        self.inner.take_error()
    }
}

/// Boxed traces forward to their contents, so `PartitionTrace<Box<dyn
/// Trace>>` (how the CLI partitions a freshly built workload) just works.
impl<T: Trace + ?Sized> Trace for Box<T> {
    fn peek(&mut self) -> Option<Arrival> {
        (**self).peek()
    }
    fn next_arrival(&mut self) -> Option<Arrival> {
        (**self).next_arrival()
    }
    fn remaining_hint(&self) -> (u64, Option<u64>) {
        (**self).remaining_hint()
    }
    fn take_error(&mut self) -> Option<String> {
        (**self).take_error()
    }
}

// ---------------------------------------------------------------------------
// Azure population adapter: per-function lazy sources + merge.
// ---------------------------------------------------------------------------

struct AzureFnGen {
    config_id: usize,
    class: FunctionClass,
    mean_gap_s: f64,
    frng: SimRng,
    t: f64,
    horizon: f64,
}

impl ArrivalGen for AzureFnGen {
    fn produce(&mut self) -> Option<Arrival> {
        if self.t >= self.horizon {
            return None;
        }
        let at = SimTime::ZERO + SimDuration::from_secs_f64(self.t);
        self.t += match self.class {
            FunctionClass::Periodic => self.mean_gap_s * self.frng.jitter(0.05),
            _ => self.frng.exponential(self.mean_gap_s),
        };
        Some(Arrival {
            at,
            config_id: self.config_id,
        })
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        (0, None)
    }
}

/// Lazy [`crate::azure::azure_workload`]: one forked-RNG source per function,
/// merged under `(at, config_id, source)`. Emits the byte-identical arrival
/// sequence of the materializer (whose stable sort by `(at, config_id)`
/// this order reproduces), without the O(requests) buffer.
pub fn azure_trace(params: &AzureWorkloadParams) -> (MergeTrace, Vec<FunctionMix>) {
    assert!(params.functions > 0, "need at least one function");
    let mut rng = SimRng::seeded(params.seed);
    let hot_count = ((params.functions as f64 * params.hot_fraction).round() as usize).max(1);
    let periodic_count = (params.functions as f64 * params.periodic_fraction).round() as usize;
    let horizon = params.duration.as_secs_f64();

    let mut mixes = Vec::with_capacity(params.functions);
    let mut sources: Vec<Box<dyn Trace>> = Vec::with_capacity(params.functions);
    for config_id in 0..params.functions {
        let class = if config_id < hot_count {
            FunctionClass::Hot
        } else if config_id < hot_count + periodic_count {
            FunctionClass::Periodic
        } else {
            FunctionClass::Rare
        };
        // Same fork + draw order as the materializer, so per-function
        // streams are bit-equal.
        let mut frng = rng.fork();
        let mean_gap_s = match class {
            FunctionClass::Hot => 2.0 + frng.unit() * 8.0,
            FunctionClass::Periodic => 60.0 * (1.0 + frng.unit() * 9.0),
            FunctionClass::Rare => 60.0 * (20.0 + frng.unit() * 40.0),
        };
        mixes.push(FunctionMix {
            config_id,
            class,
            mean_gap: SimDuration::from_secs_f64(mean_gap_s),
        });
        let t = frng.unit() * mean_gap_s;
        sources.push(Box::new(GenTrace::new(AzureFnGen {
            config_id,
            class,
            mean_gap_s,
            frng,
            t,
            horizon,
        })));
    }
    (MergeTrace::new(sources), mixes)
}

// ---------------------------------------------------------------------------
// Trace synthesizer: recorded shapes scaled to 1e6-1e8 requests over 10k+
// keys, in O(bins) memory.
// ---------------------------------------------------------------------------

/// Zipf sampler with precomputed cumulative weights and binary-search draws.
/// `SimRng::zipf` recomputes the harmonic normalizer and scans linearly on
/// *every* draw — O(keys) per arrival, hopeless at 1e8 draws over 10k keys.
/// This one is O(keys) once, O(log keys) per draw.
pub struct ZipfSampler {
    cum: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// Builds the sampler over ranks `0..n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n >= 1, "need at least one rank");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cum.push(acc);
        }
        ZipfSampler { cum, total: acc }
    }

    /// Draws a rank in `0..n` (rank 0 most popular). One `rng.unit()` call.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let target = rng.unit() * self.total;
        self.cum
            .partition_point(|&c| c < target)
            .min(self.cum.len() - 1)
    }
}

/// Daily load shape the synthesizer scales to the requested volume.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthShape {
    /// Uniform rate across the whole span.
    Flat,
    /// Smooth day curve: trough at the span edges, peak mid-span,
    /// `peak_to_trough` ≥ 1 is the peak/trough rate ratio.
    Diurnal {
        /// Peak-to-trough rate ratio (≥ 1).
        peak_to_trough: f64,
    },
    /// Diurnal base plus a triangular spike centred at fraction `at` of the
    /// span, `width` wide (also a span fraction), `magnitude` × the base
    /// mean tall — the "flash crowd on diurnal load" scenario.
    FlashCrowd {
        /// Peak-to-trough ratio of the diurnal base (≥ 1).
        peak_to_trough: f64,
        /// Spike centre as a fraction of the span in `[0, 1]`.
        at: f64,
        /// Spike width as a fraction of the span.
        width: f64,
        /// Spike height as a multiple of the mean base rate.
        magnitude: f64,
    },
    /// Correlated key churn: flat rate, but the Zipf-hot *window* of keys
    /// shifts `waves` times across the span (deploy waves rolling the hot
    /// set), each wave drawing from `window` consecutive keys.
    DeployWaves {
        /// Number of key-window shifts across the span.
        waves: usize,
        /// Keys per wave window.
        window: usize,
    },
}

/// Parameters of the seeded synthesizer.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Exact number of arrivals to emit.
    pub requests: u64,
    /// Distinct config ids (runtime keys) drawn Zipf-style.
    pub keys: usize,
    /// Simulated span the arrivals cover.
    pub duration: SimDuration,
    /// Zipf exponent for key popularity.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
    /// Daily load shape.
    pub shape: SynthShape,
    /// Added to every emitted config id (disjoint tenant key spaces).
    pub key_offset: usize,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            requests: 1_000_000,
            keys: 10_000,
            duration: SimDuration::from_mins(1440),
            zipf_exponent: 1.1,
            seed: 0x5EED_0001,
            shape: SynthShape::Flat,
            key_offset: 0,
        }
    }
}

/// Number of rate bins the synthesizer plans over: enough resolution for a
/// minute-level day curve, tiny next to the request count.
const SYNTH_BINS: u64 = 1440;

fn shape_weight(shape: &SynthShape, x: f64) -> f64 {
    let diurnal = |p2t: f64| {
        // Trough 1.0 at the span edges, peak `p2t` mid-span.
        1.0 + (p2t.max(1.0) - 1.0) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos())
    };
    match *shape {
        SynthShape::Flat | SynthShape::DeployWaves { .. } => 1.0,
        SynthShape::Diurnal { peak_to_trough } => diurnal(peak_to_trough),
        SynthShape::FlashCrowd {
            peak_to_trough,
            at,
            width,
            magnitude,
        } => {
            let base = diurnal(peak_to_trough);
            // Mean of the diurnal base over the span is (1 + p2t) / 2.
            let mean_base = (1.0 + peak_to_trough.max(1.0)) * 0.5;
            let half = (width * 0.5).max(1e-9);
            let dist = (x - at).abs();
            let spike = if dist < half {
                magnitude * mean_base * (1.0 - dist / half)
            } else {
                0.0
            };
            base + spike
        }
    }
}

/// Largest-remainder apportionment of `requests` over `weights`: exact total,
/// deterministic tie-break by bin index.
fn apportion(requests: u64, weights: &[f64]) -> Vec<u64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || requests == 0 {
        return vec![0; weights.len()];
    }
    let mut counts: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let quota = requests as f64 * (w / total);
        let floor = quota.floor() as u64;
        counts.push(floor);
        assigned += floor;
        fracs.push((quota - floor as f64, i));
    }
    // Hand the leftover to the largest fractional remainders, ties by index.
    let mut leftover = requests - assigned.min(requests);
    fracs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in fracs.iter() {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    counts
}

struct SynthGen {
    bins: Vec<u64>,
    duration_ns: u64,
    keys: usize,
    key_offset: usize,
    sampler: ZipfSampler,
    rng: SimRng,
    waves: Option<(usize, usize)>, // (waves, window) for DeployWaves
    bin: usize,
    j: u64,
    emitted: u64,
    requests: u64,
}

impl SynthGen {
    fn bin_bound(&self, b: usize) -> u64 {
        // Exact integer bin edges: no f64 drift across a 1e8-request day.
        ((self.duration_ns as u128 * b as u128) / self.bins.len() as u128) as u64
    }
}

impl ArrivalGen for SynthGen {
    fn produce(&mut self) -> Option<Arrival> {
        while self.bin < self.bins.len() {
            let n = self.bins[self.bin];
            if self.j < n {
                let start = self.bin_bound(self.bin);
                let span = (self.bin_bound(self.bin + 1) - start) as f64;
                // Jittered but monotone within the bin: the j-th of n
                // arrivals lands in [j/n, (j+1)/n) of the bin span.
                let u = self.rng.unit();
                let off = (span * (self.j as f64 + u) / n as f64) as u64;
                let key = match self.waves {
                    Some((waves, _window)) => {
                        let wave = self.bin * waves / self.bins.len();
                        let stride = (self.keys / waves.max(1)).max(1);
                        let rank = self.sampler.sample(&mut self.rng);
                        (wave * stride + rank) % self.keys
                    }
                    None => self.sampler.sample(&mut self.rng),
                };
                self.j += 1;
                self.emitted += 1;
                return Some(Arrival {
                    at: SimTime::from_nanos(start + off),
                    config_id: self.key_offset + key,
                });
            }
            self.bin += 1;
            self.j = 0;
        }
        None
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        let left = self.requests - self.emitted;
        (left, Some(left))
    }
}

/// Seeded trace synthesizer: exactly `spec.requests` arrivals over
/// `spec.duration`, keys drawn Zipf(`zipf_exponent`) over `spec.keys` ids,
/// shaped by `spec.shape`. Plans per-bin counts up front (O([`SYNTH_BINS`])
/// memory) and emits lazily — 1e8 requests cost the same resident memory as
/// 1e3.
pub fn synth_trace(spec: &SynthSpec) -> impl Trace {
    assert!(spec.keys >= 1, "need at least one key");
    assert!(!spec.duration.is_zero(), "duration must be positive");
    let nbins = SYNTH_BINS.min(spec.requests.max(1)) as usize;
    let weights: Vec<f64> = (0..nbins)
        .map(|b| shape_weight(&spec.shape, (b as f64 + 0.5) / nbins as f64))
        .collect();
    let bins = apportion(spec.requests, &weights);
    let (waves, sampler_n) = match spec.shape {
        SynthShape::DeployWaves { waves, window } => {
            let window = window.clamp(1, spec.keys);
            (Some((waves.max(1), window)), window)
        }
        _ => (None, spec.keys),
    };
    GenTrace::new(SynthGen {
        bins,
        duration_ns: spec.duration.as_nanos(),
        keys: spec.keys,
        key_offset: spec.key_offset,
        sampler: ZipfSampler::new(sampler_n, spec.zipf_exponent),
        rng: SimRng::seeded(spec.seed),
        waves,
        bin: 0,
        j: 0,
        emitted: 0,
        requests: bins_total(&weights, spec.requests),
    })
}

fn bins_total(weights: &[f64], requests: u64) -> u64 {
    if weights.iter().sum::<f64>() <= 0.0 {
        0
    } else {
        requests
    }
}

/// Multi-tenant interference: `tenants` synthesized tenants, each with a
/// disjoint key space (`key_offset` shifted by `t * keys`), its own seed
/// stream, and a flash crowd staggered across the span (tenant `t` spikes at
/// fraction `(t + 0.5) / tenants`), merged deterministically.
pub fn multi_tenant_trace(tenants: usize, per_tenant: &SynthSpec) -> MergeTrace {
    assert!(tenants >= 1, "need at least one tenant");
    let sources: Vec<Box<dyn Trace>> = (0..tenants)
        .map(|t| {
            let mut spec = per_tenant.clone();
            spec.seed = per_tenant
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
            spec.key_offset = per_tenant.key_offset + t * per_tenant.keys;
            spec.shape = SynthShape::FlashCrowd {
                peak_to_trough: 3.0,
                at: (t as f64 + 0.5) / tenants as f64,
                width: 0.1,
                magnitude: 8.0,
            };
            Box::new(synth_trace(&spec)) as Box<dyn Trace>
        })
        .collect();
    MergeTrace::new(sources)
}

// ---------------------------------------------------------------------------
// Trace file readers.
// ---------------------------------------------------------------------------

struct CountsGen {
    counts: Vec<u64>,
    interval: SimDuration,
    config_id: usize,
    idx: usize,
    j: u64,
}

impl ArrivalGen for CountsGen {
    fn produce(&mut self) -> Option<Arrival> {
        while self.idx < self.counts.len() {
            let n = self.counts[self.idx];
            if self.j < n {
                let start = round_start(self.interval, self.idx as u64);
                // Even spacing within the interval: the j-th of n arrivals
                // lands at j/n of the window. Deterministic, no RNG.
                let off = ((self.interval.as_nanos() as u128 * self.j as u128) / n as u128) as u64;
                self.j += 1;
                return Some(Arrival {
                    at: start + SimDuration::from_nanos(off),
                    config_id: self.config_id,
                });
            }
            self.idx += 1;
            self.j = 0;
        }
        None
    }
    fn remaining(&self) -> (u64, Option<u64>) {
        (0, None)
    }
}

/// Azure-Functions-style invocation-count reader (the Shahrad et al. dataset
/// shape): one row per function, `name,count,count,...` with one count per
/// `interval`-wide window. Rows become per-function lazy sources — counts are
/// held in memory (O(functions × windows) integers, the compact part), the
/// arrival expansion is streamed. An optional header row (second field not an
/// integer) and `#` comment lines are skipped. Returns the merged trace plus
/// the function names in config-id order.
pub fn azure_csv_trace(
    reader: impl BufRead,
    interval: SimDuration,
) -> Result<(MergeTrace, Vec<String>), String> {
    assert!(!interval.is_zero(), "interval must be positive");
    let mut names = Vec::new();
    let mut sources: Vec<Box<dyn Trace>> = Vec::new();
    let mut first_data_line = true;
    for (line_no, line) in reader.lines().enumerate() {
        let line_no = line_no + 1;
        let line = line.map_err(|e| format!("line {line_no}: read error: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let name = match fields.next() {
            Some(n) if !n.trim().is_empty() => n.trim().to_string(),
            _ => return Err(format!("line {line_no}: missing function name")),
        };
        let mut counts = Vec::new();
        let mut bad: Option<String> = None;
        for f in fields {
            match f.trim().parse::<u64>() {
                Ok(c) => counts.push(c),
                Err(_) => {
                    bad = Some(f.trim().to_string());
                    break;
                }
            }
        }
        if let Some(bad) = bad {
            if first_data_line {
                // Header row (e.g. "function,t0,t1,..."): skip it.
                first_data_line = false;
                continue;
            }
            return Err(format!("line {line_no}: invalid invocation count '{bad}'"));
        }
        if counts.is_empty() {
            return Err(format!(
                "line {line_no}: expected 'name,count,count,...' (no counts found)"
            ));
        }
        first_data_line = false;
        let config_id = names.len();
        names.push(name);
        sources.push(Box::new(GenTrace::new(CountsGen {
            counts,
            interval,
            config_id,
            idx: 0,
            j: 0,
        })));
    }
    if sources.is_empty() {
        return Err("trace file contains no function rows".to_string());
    }
    Ok((MergeTrace::new(sources), names))
}

/// OpenDC-style invocation-row reader: a line-streamed CSV of
/// `timestamp_ms,function_name` rows sorted by timestamp. Function names are
/// interned to config ids in first-seen order. The reader holds one line of
/// lookahead — a multi-GB trace file replays in constant memory. Malformed
/// rows and timestamp regressions fuse the source and surface through
/// [`Trace::take_error`].
pub struct OpenDcTrace<R: BufRead> {
    lines: std::io::Lines<R>,
    head: Option<Arrival>,
    ids: BTreeMap<String, usize>,
    names: Vec<String>,
    line_no: usize,
    last_at: SimTime,
    seen_data: bool,
    error: Option<String>,
}

impl<R: BufRead> OpenDcTrace<R> {
    /// Starts streaming from `reader`; reads ahead exactly one row.
    pub fn new(reader: R) -> OpenDcTrace<R> {
        let mut t = OpenDcTrace {
            lines: reader.lines(),
            head: None,
            ids: BTreeMap::new(),
            names: Vec::new(),
            line_no: 0,
            last_at: SimTime::ZERO,
            seen_data: false,
            error: None,
        };
        t.head = t.read_row();
        t
    }

    /// Function names discovered so far, indexed by config id.
    pub fn function_names(&self) -> &[String] {
        &self.names
    }

    fn fail(&mut self, msg: String) -> Option<Arrival> {
        if self.error.is_none() {
            self.error = Some(msg);
        }
        None
    }

    fn read_row(&mut self) -> Option<Arrival> {
        if self.error.is_some() {
            return None;
        }
        loop {
            let line = match self.lines.next() {
                None => return None,
                Some(Err(e)) => {
                    let line_no = self.line_no + 1;
                    return self.fail(format!("line {line_no}: read error: {e}"));
                }
                Some(Ok(l)) => l,
            };
            self.line_no += 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (ts, name) = match line.split_once(',') {
                Some(parts) => parts,
                None => {
                    let line_no = self.line_no;
                    return self.fail(format!(
                        "line {line_no}: expected 'timestamp_ms,function' row"
                    ));
                }
            };
            let ms = match ts.trim().parse::<u64>() {
                Ok(ms) => ms,
                Err(_) => {
                    if !self.seen_data {
                        // Header row: skip.
                        continue;
                    }
                    let line_no = self.line_no;
                    let ts = ts.trim().to_string();
                    return self.fail(format!("line {line_no}: invalid timestamp '{ts}'"));
                }
            };
            let name = name.trim();
            if name.is_empty() {
                let line_no = self.line_no;
                return self.fail(format!("line {line_no}: missing function name"));
            }
            let at = SimTime::from_millis(ms);
            if at < self.last_at {
                let line_no = self.line_no;
                return self.fail(format!(
                    "line {line_no}: timestamps must be non-decreasing ({at} after {})",
                    self.last_at
                ));
            }
            self.last_at = at;
            self.seen_data = true;
            let next_id = self.names.len();
            let config_id = match self.ids.get(name) {
                Some(&id) => id,
                None => {
                    self.ids.insert(name.to_string(), next_id);
                    self.names.push(name.to_string());
                    next_id
                }
            };
            return Some(Arrival { at, config_id });
        }
    }
}

impl<R: BufRead> Trace for OpenDcTrace<R> {
    fn peek(&mut self) -> Option<Arrival> {
        self.head
    }
    fn next_arrival(&mut self) -> Option<Arrival> {
        let out = self.head.take();
        if out.is_some() {
            self.head = self.read_row();
        }
        out
    }
    fn remaining_hint(&self) -> (u64, Option<u64>) {
        (self.head.is_some() as u64, None)
    }
    fn take_error(&mut self) -> Option<String> {
        self.error.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::youtube;
    use crate::{is_time_ordered, youtube_trace, YoutubeTraceParams};

    const ROUND: SimDuration = SimDuration::from_secs(30);

    fn assert_streams_eq(mut t: impl Trace, expected: &[Arrival]) {
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(t.peek(), Some(*want), "peek diverged at arrival {i}");
            assert_eq!(t.next_arrival(), Some(*want), "diverged at arrival {i}");
        }
        assert_eq!(t.peek(), None);
        assert_eq!(t.next_arrival(), None);
        assert_eq!(t.next_arrival(), None, "trace must stay fused after end");
    }

    #[test]
    fn pattern_adapters_match_materializers() {
        assert_streams_eq(serial_trace(ROUND, 7, 3), &patterns::serial(ROUND, 7, 3));
        assert_streams_eq(
            parallel_trace(5, 4, ROUND),
            &patterns::parallel_clients(5, 4, ROUND),
        );
        for dir in [Direction::Increasing, Direction::Decreasing] {
            assert_streams_eq(
                linear_ramp_trace(dir, 2, 2, 4, ROUND, 1),
                &patterns::linear_ramp(dir, 2, 2, 4, ROUND, 1),
            );
            assert_streams_eq(
                exponential_ramp_trace(dir, 5, ROUND, 1),
                &patterns::exponential_ramp(dir, 5, ROUND, 1),
            );
        }
        assert_streams_eq(
            burst_trace(8, 10, vec![3, 7], 10, ROUND, 2),
            &patterns::burst(8, 10, &[3, 7], 10, ROUND, 2),
        );
        assert_streams_eq(
            poisson_trace(5.0, SimDuration::from_secs(120), 4, 1.1, 42),
            &patterns::poisson(5.0, SimDuration::from_secs(120), 4, 1.1, 42),
        );
    }

    #[test]
    fn youtube_adapter_matches_materializer() {
        let rates = youtube_trace(&YoutubeTraceParams {
            length: 60,
            ..Default::default()
        });
        let expected = youtube::expand_to_arrivals(&rates, SimDuration::from_secs(60), 9, 77);
        assert_streams_eq(
            youtube_arrivals_trace(rates, SimDuration::from_secs(60), 9, 77),
            &expected,
        );
    }

    #[test]
    fn azure_adapter_matches_materializer() {
        let params = AzureWorkloadParams::default();
        let (expected, expected_mixes) = crate::azure_workload(&params);
        let (trace, mixes) = azure_trace(&params);
        assert_eq!(mixes.len(), expected_mixes.len());
        for (a, b) in mixes.iter().zip(&expected_mixes) {
            assert_eq!(
                (a.config_id, a.class, a.mean_gap),
                (b.config_id, b.class, b.mean_gap)
            );
        }
        assert_streams_eq(trace, &expected);
    }

    #[test]
    fn merge_of_colliding_generators_is_deterministic() {
        // Two serial sources with the same interval ⇒ every timestamp
        // collides. Before the (at, config_id, seq) total order, this
        // ordering was whatever a stable sort happened to preserve.
        let merged = || {
            let sources: Vec<Box<dyn Trace>> = vec![
                Box::new(serial_trace(ROUND, 5, 1)),
                Box::new(serial_trace(ROUND, 5, 0)),
            ];
            drain(&mut MergeTrace::new(sources))
        };
        let a = merged();
        let b = merged();
        assert_eq!(a, b, "same sources must merge byte-identically");
        assert!(is_time_ordered(&a));
        // At each instant, config 0 precedes config 1 regardless of the
        // order the sources were supplied in.
        for pair in a.chunks(2) {
            assert_eq!(pair[0].at, pair[1].at);
            assert_eq!((pair[0].config_id, pair[1].config_id), (0, 1));
        }
    }

    #[test]
    fn merge_ties_within_a_source_keep_emission_order() {
        // One source emits two arrivals at the same (at, config): seq order
        // (emission order) must survive the merge.
        let t0 = SimTime::from_secs(1);
        let items = vec![
            Arrival {
                at: t0,
                config_id: 5,
            },
            Arrival {
                at: t0,
                config_id: 5,
            },
            Arrival {
                at: t0,
                config_id: 7,
            },
        ];
        let sources: Vec<Box<dyn Trace>> = vec![
            Box::new(VecTrace::new(items.clone())),
            Box::new(serial_trace(SimDuration::from_secs(1), 2, 6)),
        ];
        let out = drain(&mut MergeTrace::new(sources));
        let configs: Vec<usize> = out.iter().map(|a| a.config_id).collect();
        // t=0: serial's first arrival; t=1: configs 5,5,6,7 in total order.
        assert_eq!(configs, vec![6, 5, 5, 6, 7]);
    }

    #[test]
    fn merge_fuses_and_reports_out_of_order_source() {
        // A source that goes backwards after its first pull (VecTrace would
        // debug-assert on construction, so hand-roll the misbehavior).
        struct Backwards(usize);
        impl Trace for Backwards {
            fn peek(&mut self) -> Option<Arrival> {
                self.items().get(self.0).copied()
            }
            fn next_arrival(&mut self) -> Option<Arrival> {
                let out = self.items().get(self.0).copied();
                if out.is_some() {
                    self.0 += 1;
                }
                out
            }
            fn remaining_hint(&self) -> (u64, Option<u64>) {
                (0, None)
            }
        }
        impl Backwards {
            fn items(&self) -> Vec<Arrival> {
                vec![
                    Arrival {
                        at: SimTime::from_secs(5),
                        config_id: 0,
                    },
                    Arrival {
                        at: SimTime::from_secs(1),
                        config_id: 0,
                    },
                ]
            }
        }
        let sources: Vec<Box<dyn Trace>> = vec![Box::new(Backwards(0))];
        let mut merged = MergeTrace::new(sources);
        let out = drain(&mut merged);
        // The offending source is fused after its first (valid) arrival.
        assert_eq!(out.len(), 1);
        let err = merged.take_error();
        assert!(
            err.as_deref().is_some_and(|e| e.contains("out-of-order")),
            "expected out-of-order error, got {err:?}"
        );
    }

    #[test]
    fn config_modulo_remaps_on_the_way_out() {
        let mut t = ConfigModulo::new(parallel_trace(5, 2, ROUND), 2);
        let out = drain(&mut t);
        assert!(out.iter().all(|a| a.config_id < 2));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn zipf_sampler_matches_skew_and_bounds() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = SimRng::seeded(9);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90].saturating_sub(50));
        assert!(counts[0] > 2_000, "rank 0 got {}", counts[0]);
    }

    #[test]
    fn synth_emits_exact_count_deterministically() {
        let spec = SynthSpec {
            requests: 12_345,
            keys: 500,
            duration: SimDuration::from_mins(60),
            ..Default::default()
        };
        let a = drain(&mut synth_trace(&spec));
        let b = drain(&mut synth_trace(&spec));
        assert_eq!(a, b);
        assert_eq!(a.len(), 12_345);
        assert!(is_time_ordered(&a));
        assert!(a.iter().all(|x| x.config_id < 500));
        assert!(a.iter().all(|x| x.at < SimTime::ZERO + spec.duration));
        // remaining_hint is exact for the synthesizer.
        let mut t = synth_trace(&spec);
        assert_eq!(t.remaining_hint(), (12_345, Some(12_345)));
        let _ = t.next_arrival();
        assert_eq!(t.remaining_hint(), (12_344, Some(12_344)));
    }

    #[test]
    fn synth_handles_degenerate_sizes() {
        let tiny = SynthSpec {
            requests: 3,
            keys: 2,
            duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        assert_eq!(drain(&mut synth_trace(&tiny)).len(), 3);
        let empty = SynthSpec {
            requests: 0,
            ..tiny.clone()
        };
        assert_eq!(drain(&mut synth_trace(&empty)).len(), 0);
    }

    fn bin_histogram(arrivals: &[Arrival], duration: SimDuration, nbins: usize) -> Vec<u64> {
        let mut bins = vec![0u64; nbins];
        for a in arrivals {
            let b =
                ((a.at.as_nanos() as u128 * nbins as u128) / duration.as_nanos() as u128) as usize;
            bins[b.min(nbins - 1)] += 1;
        }
        bins
    }

    #[test]
    fn diurnal_shape_peaks_mid_span() {
        let spec = SynthSpec {
            requests: 50_000,
            keys: 10,
            duration: SimDuration::from_mins(1440),
            shape: SynthShape::Diurnal {
                peak_to_trough: 4.0,
            },
            ..Default::default()
        };
        let arrivals = drain(&mut synth_trace(&spec));
        let bins = bin_histogram(&arrivals, spec.duration, 24);
        let trough = bins[0].max(1);
        let peak = bins[12];
        let ratio = peak as f64 / trough as f64;
        assert!((2.5..6.0).contains(&ratio), "peak/trough ratio {ratio}");
    }

    #[test]
    fn flash_crowd_spikes_at_the_configured_instant() {
        let spec = SynthSpec {
            requests: 50_000,
            keys: 10,
            duration: SimDuration::from_mins(1440),
            shape: SynthShape::FlashCrowd {
                peak_to_trough: 2.0,
                at: 0.25,
                width: 0.05,
                magnitude: 10.0,
            },
            ..Default::default()
        };
        let arrivals = drain(&mut synth_trace(&spec));
        let bins = bin_histogram(&arrivals, spec.duration, 48);
        let spike = bins[12]; // x = 0.25 of the span
        let elsewhere = bins[36];
        assert!(
            spike as f64 > elsewhere as f64 * 3.0,
            "spike {spike} vs elsewhere {elsewhere}"
        );
    }

    #[test]
    fn deploy_waves_shift_the_hot_key_window() {
        let spec = SynthSpec {
            requests: 40_000,
            keys: 1000,
            duration: SimDuration::from_mins(1440),
            shape: SynthShape::DeployWaves {
                waves: 4,
                window: 100,
            },
            ..Default::default()
        };
        let arrivals = drain(&mut synth_trace(&spec));
        assert_eq!(arrivals.len(), 40_000);
        let quarter = spec.duration.as_nanos() / 4;
        let hot_key = |lo: u64, hi: u64| -> usize {
            let mut counts: BTreeMap<usize, u64> = BTreeMap::new();
            for a in &arrivals {
                let ns = a.at.as_nanos();
                if ns >= lo && ns < hi {
                    *counts.entry(a.config_id).or_insert(0) += 1;
                }
            }
            counts
                .into_iter()
                .max_by_key(|&(k, c)| (c, usize::MAX - k))
                .map(|(k, _)| k)
                .unwrap_or(0)
        };
        let first = hot_key(0, quarter);
        let last = hot_key(3 * quarter, 4 * quarter);
        // Wave 0 draws from keys [0, 100), wave 3 from [750, 850).
        assert!(first < 100, "first-quarter hot key {first}");
        assert!((750..850).contains(&last), "last-quarter hot key {last}");
    }

    #[test]
    fn multi_tenant_spaces_are_disjoint_and_staggered() {
        let per_tenant = SynthSpec {
            requests: 30_000,
            keys: 50,
            duration: SimDuration::from_mins(1440),
            ..Default::default()
        };
        let mut t = multi_tenant_trace(3, &per_tenant);
        let arrivals = drain(&mut t);
        assert_eq!(arrivals.len(), 90_000);
        assert!(is_time_ordered(&arrivals));
        assert!(t.take_error().is_none());
        // Each tenant stays inside its shifted key space.
        for a in &arrivals {
            assert!(a.config_id < 150);
        }
        // Tenant 1's flash crowd (at x=0.5) dominates mid-span traffic.
        let mid_lo = per_tenant.duration.as_nanos() * 45 / 100;
        let mid_hi = per_tenant.duration.as_nanos() * 55 / 100;
        let mid: Vec<&Arrival> = arrivals
            .iter()
            .filter(|a| (mid_lo..mid_hi).contains(&a.at.as_nanos()))
            .collect();
        let tenant1 = mid
            .iter()
            .filter(|a| (50..100).contains(&a.config_id))
            .count();
        assert!(
            tenant1 * 2 > mid.len(),
            "tenant 1 has {tenant1} of {} mid-span arrivals",
            mid.len()
        );
    }

    #[test]
    fn azure_csv_reader_expands_counts() {
        let csv = "function,t0,t1,t2\nalpha,2,0,1\nbeta,1,1,0\n";
        let (mut trace, names) =
            azure_csv_trace(csv.as_bytes(), SimDuration::from_secs(60)).unwrap();
        assert_eq!(names, vec!["alpha", "beta"]);
        let out = drain(&mut trace);
        assert!(trace.take_error().is_none());
        assert!(is_time_ordered(&out));
        // alpha: 2 at window 0 (t=0s, t=30s), 1 at window 2 (t=120s);
        // beta: 1 at window 0 (t=0s), 1 at window 1 (t=60s).
        let expect = vec![
            Arrival {
                at: SimTime::from_secs(0),
                config_id: 0,
            },
            Arrival {
                at: SimTime::from_secs(0),
                config_id: 1,
            },
            Arrival {
                at: SimTime::from_secs(30),
                config_id: 0,
            },
            Arrival {
                at: SimTime::from_secs(60),
                config_id: 1,
            },
            Arrival {
                at: SimTime::from_secs(120),
                config_id: 0,
            },
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn azure_csv_reader_rejects_bad_rows() {
        let err = azure_csv_trace("alpha,2,x,1\n".as_bytes(), SimDuration::from_secs(60))
            .map(|_| ())
            .unwrap_err();
        // First line may be a header, so the *second* bad line is the error.
        assert!(err.contains("no function rows"), "{err}");
        let err = azure_csv_trace(
            "alpha,1,2\nbeta,2,x\n".as_bytes(),
            SimDuration::from_secs(60),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("invalid invocation count"),
            "{err}"
        );
        let err = azure_csv_trace("alpha\n".as_bytes(), SimDuration::from_secs(60))
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn opendc_reader_interns_and_orders() {
        let csv = "timestamp,function\n0,alpha\n500,beta\n500,alpha\n1500,gamma\n";
        let mut t = OpenDcTrace::new(csv.as_bytes());
        let out = drain(&mut t);
        assert!(t.take_error().is_none());
        assert_eq!(t.function_names(), ["alpha", "beta", "gamma"]);
        let expect = vec![
            Arrival {
                at: SimTime::from_millis(0),
                config_id: 0,
            },
            Arrival {
                at: SimTime::from_millis(500),
                config_id: 1,
            },
            Arrival {
                at: SimTime::from_millis(500),
                config_id: 0,
            },
            Arrival {
                at: SimTime::from_millis(1500),
                config_id: 2,
            },
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn opendc_reader_reports_time_regression() {
        let csv = "100,alpha\n50,beta\n";
        let mut t = OpenDcTrace::new(csv.as_bytes());
        let out = drain(&mut t);
        assert_eq!(out.len(), 1, "stream fuses at the regression");
        let err = t.take_error();
        assert!(
            err.as_deref()
                .is_some_and(|e| e.contains("line 2") && e.contains("non-decreasing")),
            "{err:?}"
        );
    }

    #[test]
    fn opendc_reader_reports_malformed_rows() {
        let mut t = OpenDcTrace::new("10,alpha\nnonsense\n".as_bytes());
        let _ = drain(&mut t);
        let err = t.take_error();
        assert!(
            err.as_deref().is_some_and(|e| e.contains("line 2")),
            "{err:?}"
        );
    }

    #[test]
    fn vec_trace_and_drain_round_trip() {
        let w = patterns::serial(ROUND, 4, 0);
        let mut t = VecTrace::new(w.clone());
        assert_eq!(t.remaining_hint(), (4, Some(4)));
        assert_eq!(drain(&mut t), w);
        assert_eq!(t.remaining_hint(), (0, Some(0)));
    }

    fn partition_fixture() -> Vec<Arrival> {
        // config_ids 0..5 folded onto 3 slots: slot = config_id % 3.
        (0..12u64)
            .map(|i| Arrival {
                at: SimTime::from_millis(100 * i),
                config_id: (i as usize * 7 + 1) % 5,
            })
            .collect()
    }

    #[test]
    fn partitions_cover_stream_with_global_indices() {
        let items = partition_fixture();
        let assign = std::sync::Arc::new(vec![0usize, 1, 0]); // 3 slots, 2 workers
        let mut seen: Vec<(u64, Arrival)> = Vec::new();
        for w in 0..2 {
            let mut part = PartitionTrace::new(
                VecTrace::new(items.clone()),
                std::sync::Arc::clone(&assign),
                w,
            );
            while let Some((a, idx)) = part.next_indexed() {
                assert_eq!(
                    assign[a.config_id % assign.len()],
                    w,
                    "worker {w} received a foreign arrival"
                );
                seen.push((idx, a));
            }
            // Exhausting any partition drains the underlying stream, so every
            // worker reports the same (global) horizon basis.
            assert_eq!(part.horizon_basis(), Some(items[items.len() - 1].at));
            assert_eq!(part.peek(), None, "partition stays fused after end");
        }
        // Union of partitions is the underlying stream, and the global index
        // of each arrival is its position in that stream.
        seen.sort_by_key(|(idx, _)| *idx);
        let indices: Vec<u64> = seen.iter().map(|(idx, _)| *idx).collect();
        assert_eq!(indices, (0..items.len() as u64).collect::<Vec<_>>());
        let merged: Vec<Arrival> = seen.into_iter().map(|(_, a)| a).collect();
        assert_eq!(merged, items);
    }

    #[test]
    fn empty_partition_still_sees_global_horizon() {
        let items = partition_fixture();
        // Worker 2 owns no slots at all.
        let assign = std::sync::Arc::new(vec![0usize, 1, 0]);
        let mut part = PartitionTrace::new(VecTrace::new(items.clone()), assign, 2);
        assert_eq!(part.horizon_basis(), None, "nothing pulled yet");
        assert_eq!(part.next_indexed(), None);
        assert_eq!(part.horizon_basis(), Some(items[items.len() - 1].at));
    }

    #[test]
    fn partition_of_empty_trace_has_no_basis() {
        let assign = std::sync::Arc::new(vec![0usize]);
        let mut part = PartitionTrace::new(VecTrace::new(Vec::new()), assign, 0);
        assert_eq!(part.next_indexed(), None);
        assert_eq!(part.horizon_basis(), None);
    }

    #[test]
    fn partition_passes_file_errors_through() {
        let csv = "100,alpha\n50,beta\n";
        let assign = std::sync::Arc::new(vec![0usize]);
        let mut part = PartitionTrace::new(OpenDcTrace::new(csv.as_bytes()), assign, 0);
        let _ = drain(&mut part);
        let err = part.take_error();
        assert!(
            err.as_deref().is_some_and(|e| e.contains("line 2")),
            "{err:?}"
        );
    }
}
