//! Empirical cumulative distribution functions (Fig. 1(b)).

use simclock::SimDuration;

/// An empirical CDF over latency samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<SimDuration>,
}

impl Cdf {
    /// Builds a CDF from samples (copied and sorted).
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn from_samples(samples: &[SimDuration]) -> Self {
        assert!(!samples.is_empty(), "CDF needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Cdf { sorted }
    }

    /// Fraction of samples ≤ `x`.
    pub fn eval(&self, x: SimDuration) -> f64 {
        // partition_point returns the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The value at quantile `q ∈ [0, 1]` (nearest rank).
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// A CDF is never empty (construction enforces it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evenly spaced `(value, probability)` points for plotting: the CDF
    /// evaluated at `n` quantiles.
    pub fn curve(&self, n: usize) -> Vec<(SimDuration, f64)> {
        assert!(n >= 2, "need at least two curve points");
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q.max(1e-9)), q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn eval_counts_fraction_leq() {
        let cdf = Cdf::from_samples(&[ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(cdf.eval(ms(5)), 0.0);
        assert_eq!(cdf.eval(ms(10)), 0.25);
        assert_eq!(cdf.eval(ms(25)), 0.5);
        assert_eq!(cdf.eval(ms(40)), 1.0);
        assert_eq!(cdf.eval(ms(100)), 1.0);
    }

    #[test]
    fn quantile_inverts_eval() {
        let samples: Vec<_> = (1..=100).map(ms).collect();
        let cdf = Cdf::from_samples(&samples);
        assert_eq!(cdf.quantile(0.5), ms(50));
        assert_eq!(cdf.quantile(1.0), ms(100));
        assert_eq!(cdf.quantile(0.01), ms(1));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let cdf = Cdf::from_samples(&[ms(30), ms(10), ms(20)]);
        assert_eq!(cdf.quantile(1.0), ms(30));
        assert!((cdf.eval(ms(15)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        let _ = Cdf::from_samples(&[]);
    }

    #[test]
    fn curve_is_monotone() {
        let samples: Vec<_> = (1..=50).map(|i| ms(i * i)).collect();
        let cdf = Cdf::from_samples(&samples);
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// eval is monotone non-decreasing.
    #[test]
    fn prop_eval_monotone() {
        testkit::check(64, |g| {
            let vals = g.vec(1..100, |g| g.u64_in(0..10_000));
            let probe1 = g.u64_in(0..10_000);
            let probe2 = g.u64_in(0..10_000);
            let samples: Vec<_> = vals.iter().map(|&v| SimDuration::from_nanos(v)).collect();
            let cdf = Cdf::from_samples(&samples);
            let (lo, hi) = if probe1 <= probe2 {
                (probe1, probe2)
            } else {
                (probe2, probe1)
            };
            assert!(cdf.eval(SimDuration::from_nanos(lo)) <= cdf.eval(SimDuration::from_nanos(hi)));
        });
    }

    /// quantile(eval(x)) ≥ clamp of x into sample range for sample points.
    #[test]
    fn prop_quantile_eval_consistency() {
        testkit::check(64, |g| {
            let vals = g.vec(1..100, |g| g.u64_in(1..10_000));
            let samples: Vec<_> = vals.iter().map(|&v| SimDuration::from_nanos(v)).collect();
            let cdf = Cdf::from_samples(&samples);
            for &s in &samples {
                let q = cdf.eval(s);
                // The quantile at that probability is at least s.
                assert!(cdf.quantile(q) >= s);
            }
        });
    }
}
