//! Figure 8: image-recognition execution time with and without HotC.
//!
//! §V-B: on the PowerEdge server, HotC reduces execution time of `v3-app`
//! (inception-v3, Python) by 33.2 % and `TF-API-app` (Go) by 23.9 %. On a
//! Raspberry Pi 3 with overlay-network containers, the same apps run >10×
//! longer, the cold start is a smaller share of total time, and the
//! reductions shrink to 26.6 % and 20.6 %. "Without HotC" means each run
//! boots a fresh container; with HotC, runs reuse the hot runtime.

use crate::experiments::{gateway_on, reduction_pct};
use containersim::{HardwareProfile, NetworkMode};
use faas::gateway::FunctionSpec;
use faas::policy::ColdStartAlways;
use faas::{AppProfile, Gateway, RuntimeProvider};
use hotc::HotC;
use metrics_lite::Table;
use simclock::{SimDuration, SimTime};

/// One app × platform cell of Fig. 8.
pub struct Fig8Cell {
    /// Application name.
    pub app: &'static str,
    /// Platform name.
    pub platform: &'static str,
    /// Mean per-run time without HotC (fresh container per run).
    pub default_mean: SimDuration,
    /// Mean per-run time with HotC (runtime reuse).
    pub hotc_mean: SimDuration,
}

impl Fig8Cell {
    /// Percentage reduction (paper: 33.2 / 23.9 server, 26.6 / 20.6 Pi).
    pub fn reduction_pct(&self) -> f64 {
        reduction_pct(
            self.default_mean.as_secs_f64(),
            self.hotc_mean.as_secs_f64(),
        )
    }
}

/// Result of the Fig. 8 experiment.
pub struct Fig8Result {
    /// The four cells: (v3, server), (tf, server), (v3, pi), (tf, pi).
    pub cells: Vec<Fig8Cell>,
}

fn mean_over_runs<P: RuntimeProvider>(
    mut gw: Gateway<P>,
    function: &str,
    runs: usize,
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    let mut now = SimTime::ZERO;
    for _ in 0..runs {
        let trace = gw.handle(function, now).expect("run");
        total += trace.total();
        now = trace.t6_gateway_out + SimDuration::from_secs(5);
        gw.tick(now).expect("tick");
    }
    total / runs as u64
}

fn measure(
    app: &AppProfile,
    hw: HardwareProfile,
    net: NetworkMode,
    runs: usize,
) -> (SimDuration, SimDuration) {
    let spec = FunctionSpec::from_app(app.clone()).with_config(app.config_with_network(net));

    let mut default_gw = gateway_on(hw.clone(), ColdStartAlways::new(), &[]);
    default_gw.register(spec.clone());
    let default_mean = mean_over_runs(default_gw, &spec.name, runs);

    let mut hotc_gw = gateway_on(hw, HotC::with_defaults(), &[]);
    hotc_gw.register(spec.clone());
    let hotc_mean = mean_over_runs(hotc_gw, &spec.name, runs);

    (default_mean, hotc_mean)
}

/// Runs all four cells, `runs` executions each (paper: average of ten).
pub fn run(runs: usize) -> Fig8Result {
    let mut cells = Vec::new();
    for (app, name) in [
        (AppProfile::v3_app(), "v3-app"),
        (AppProfile::tf_api_app(), "TF-API-app"),
    ] {
        let (d, h) = measure(&app, HardwareProfile::server(), NetworkMode::Bridge, runs);
        cells.push(Fig8Cell {
            app: name,
            platform: "server",
            default_mean: d,
            hotc_mean: h,
        });
    }
    // §V-B: on the Pi the apps run in overlay-network containers.
    for (app, name) in [
        (AppProfile::v3_app(), "v3-app"),
        (AppProfile::tf_api_app(), "TF-API-app"),
    ] {
        let (d, h) = measure(
            &app,
            HardwareProfile::raspberry_pi3(),
            NetworkMode::Overlay,
            runs,
        );
        cells.push(Fig8Cell {
            app: name,
            platform: "raspberry-pi3",
            default_mean: d,
            hotc_mean: h,
        });
    }
    Fig8Result { cells }
}

impl Fig8Result {
    /// Looks up a cell.
    pub fn cell(&self, app: &str, platform: &str) -> &Fig8Cell {
        self.cells
            .iter()
            .find(|c| c.app == app && c.platform == platform)
            .expect("cell measured")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Fig 8: image recognition execution time, w/o vs w/ HotC",
            &[
                "app",
                "platform",
                "default_s",
                "hotc_s",
                "reduction_%",
                "paper_%",
            ],
        );
        let paper = [33.2, 23.9, 26.6, 20.6];
        for (cell, paper_pct) in self.cells.iter().zip(paper) {
            table.row(&[
                cell.app.to_string(),
                cell.platform.to_string(),
                format!("{:.2}", cell.default_mean.as_secs_f64()),
                format!("{:.2}", cell.hotc_mean.as_secs_f64()),
                format!("{:.1}", cell.reduction_pct()),
                format!("{paper_pct:.1}"),
            ]);
        }
        table.render()
    }
}
