//! lint-fixture-path: crates/core/src/fixture.rs
fn f(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    x.unwrap() + y.expect("fixture")
}
