//! Baseline runtime-management policies (§III-B industry practices).
//!
//! * [`ColdStartAlways`] — the unmanaged default: every request boots a new
//!   container, torn down after the response.
//! * [`FixedKeepAlive`] — the AWS-Lambda-style policy: after a request, the
//!   container is kept warm for a fixed TTL (15 minutes in AWS) and reused
//!   for identical configurations; expired containers are reclaimed on tick.
//! * [`PeriodicWarmup`] — the Azure-Logic-style policy: containers are kept
//!   alive indefinitely by periodic warm-up pings, which cost background
//!   work; never expires, wastes resources on idle runtimes.
//!
//! All policies implement [`RuntimeProvider`], so the gateway and the
//! experiment drivers treat them interchangeably with HotC.

use crate::{Acquisition, RuntimeProvider};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, EngineError};
use simclock::{SimDuration, SimTime};
use std::collections::HashMap;

/// Boot a fresh container per request; remove it afterwards.
#[derive(Debug, Default)]
pub struct ColdStartAlways {
    background: SimDuration,
}

impl ColdStartAlways {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RuntimeProvider for ColdStartAlways {
    fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        let (container, cost) = engine.create_container(config.clone(), now)?;
        Ok(Acquisition::cold(container, cost))
    }

    fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<(), EngineError> {
        self.background += engine.stop_and_remove(container, now)?;
        Ok(())
    }

    fn tick(&mut self, _engine: &mut ContainerEngine, _now: SimTime) -> Result<(), EngineError> {
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cold-start"
    }

    fn background_cost(&self) -> SimDuration {
        self.background
    }
}

/// A warm container waiting for reuse.
#[derive(Debug, Clone, Copy)]
struct WarmEntry {
    container: ContainerId,
    idle_since: SimTime,
}

/// Keep containers warm for a fixed TTL after use (AWS-style).
#[derive(Debug)]
pub struct FixedKeepAlive {
    ttl: SimDuration,
    warm: HashMap<ContainerConfig, Vec<WarmEntry>>,
    background: SimDuration,
}

impl FixedKeepAlive {
    /// Creates the policy with the given keep-alive TTL.
    pub fn new(ttl: SimDuration) -> Self {
        FixedKeepAlive {
            ttl,
            warm: HashMap::new(),
            background: SimDuration::ZERO,
        }
    }

    /// AWS Lambda's publicized default: roughly 15 minutes.
    pub fn aws_default() -> Self {
        Self::new(SimDuration::from_mins(15))
    }

    /// Number of currently warm containers (across all configs).
    pub fn warm_count(&self) -> usize {
        self.warm.values().map(Vec::len).sum()
    }
}

impl RuntimeProvider for FixedKeepAlive {
    fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        // Expire-then-reuse so a stale container never serves a request.
        self.tick(engine, now)?;
        if let Some(entries) = self.warm.get_mut(config) {
            if let Some(entry) = entries.pop() {
                if entries.is_empty() {
                    self.warm.remove(config);
                }
                return Ok(Acquisition::warm(entry.container));
            }
        }
        let (container, cost) = engine.create_container(config.clone(), now)?;
        Ok(Acquisition::cold(container, cost))
    }

    fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<(), EngineError> {
        // A crashed container cannot be kept warm: dispose of it.
        if engine.state(container) == containersim::ContainerState::Stopped {
            self.background += engine.stop_and_remove(container, now)?;
            return Ok(());
        }
        // Clean the used container off the request path, then shelve it.
        self.background += engine.cleanup(container, now)?;
        // `cleanup` succeeded, so the container is live and configured.
        let config = engine
            .config(container)
            .ok_or(EngineError::UnknownContainer(container))?
            .clone();
        self.warm.entry(config).or_default().push(WarmEntry {
            container,
            idle_since: now,
        });
        Ok(())
    }

    fn tick(&mut self, engine: &mut ContainerEngine, now: SimTime) -> Result<(), EngineError> {
        let ttl = self.ttl;
        let mut expired: Vec<ContainerId> = Vec::new();
        for entries in self.warm.values_mut() {
            entries.retain(|e| {
                if now.duration_since(e.idle_since) > ttl {
                    expired.push(e.container);
                    false
                } else {
                    true
                }
            });
        }
        self.warm.retain(|_, v| !v.is_empty());
        for id in expired {
            self.background += engine.stop_and_remove(id, now)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fixed-keepalive"
    }

    fn background_cost(&self) -> SimDuration {
        self.background
    }
}

/// Keep every container alive forever via periodic warm-up pings
/// (Azure-Logic-style). Never cold-starts a config twice, but pays a ping
/// per warm container per period and never reclaims resources.
#[derive(Debug)]
pub struct PeriodicWarmup {
    period: SimDuration,
    ping_cost: SimDuration,
    warm: HashMap<ContainerConfig, Vec<WarmEntry>>,
    last_warmup: SimTime,
    background: SimDuration,
}

impl PeriodicWarmup {
    /// Creates the policy; `period` is the warm-up ping interval.
    pub fn new(period: SimDuration) -> Self {
        PeriodicWarmup {
            period,
            ping_cost: SimDuration::from_millis(5),
            warm: HashMap::new(),
            last_warmup: SimTime::ZERO,
            background: SimDuration::ZERO,
        }
    }

    /// Number of currently warm containers.
    pub fn warm_count(&self) -> usize {
        self.warm.values().map(Vec::len).sum()
    }
}

impl RuntimeProvider for PeriodicWarmup {
    fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        self.tick(engine, now)?;
        if let Some(entries) = self.warm.get_mut(config) {
            if let Some(entry) = entries.pop() {
                return Ok(Acquisition::warm(entry.container));
            }
        }
        let (container, cost) = engine.create_container(config.clone(), now)?;
        Ok(Acquisition::cold(container, cost))
    }

    fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<(), EngineError> {
        if engine.state(container) == containersim::ContainerState::Stopped {
            self.background += engine.stop_and_remove(container, now)?;
            return Ok(());
        }
        self.background += engine.cleanup(container, now)?;
        // `cleanup` succeeded, so the container is live and configured.
        let config = engine
            .config(container)
            .ok_or(EngineError::UnknownContainer(container))?
            .clone();
        self.warm.entry(config).or_default().push(WarmEntry {
            container,
            idle_since: now,
        });
        Ok(())
    }

    fn tick(&mut self, _engine: &mut ContainerEngine, now: SimTime) -> Result<(), EngineError> {
        // Charge one ping per warm container per elapsed period.
        let elapsed = now.duration_since(self.last_warmup);
        let periods = elapsed.div_duration(self.period);
        if periods > 0 {
            let pings = periods * self.warm_count() as u64;
            self.background += self.ping_cost * pings;
            self.last_warmup += self.period * periods;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "periodic-warmup"
    }

    fn background_cost(&self) -> SimDuration {
        self.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{ContainerState, HardwareProfile, ImageId};

    fn engine() -> ContainerEngine {
        ContainerEngine::with_local_images(HardwareProfile::server())
    }

    fn cfg() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"))
    }

    fn exec_once(
        engine: &mut ContainerEngine,
        provider: &mut dyn RuntimeProvider,
        now: SimTime,
    ) -> Acquisition {
        let acq = provider.acquire(engine, &cfg(), now).unwrap();
        let work = containersim::engine::ExecWork::light(SimDuration::from_millis(50));
        let out = engine.begin_exec(acq.container, work, now).unwrap();
        engine.end_exec(acq.container, now + out.latency).unwrap();
        provider
            .release(engine, acq.container, now + out.latency)
            .unwrap();
        acq
    }

    #[test]
    fn cold_start_always_never_reuses() {
        let mut e = engine();
        let mut p = ColdStartAlways::new();
        let a1 = exec_once(&mut e, &mut p, SimTime::from_secs(0));
        let a2 = exec_once(&mut e, &mut p, SimTime::from_secs(10));
        assert!(a1.cold && a2.cold);
        assert_ne!(a1.container, a2.container);
        assert_eq!(e.live_count(), 0, "containers removed after use");
        assert!(p.background_cost() > SimDuration::ZERO);
    }

    #[test]
    fn keepalive_reuses_within_ttl() {
        let mut e = engine();
        let mut p = FixedKeepAlive::new(SimDuration::from_mins(15));
        let a1 = exec_once(&mut e, &mut p, SimTime::from_secs(0));
        assert!(a1.cold);
        assert_eq!(p.warm_count(), 1);
        let a2 = exec_once(&mut e, &mut p, SimTime::from_secs(60));
        assert!(!a2.cold, "should reuse the warm container");
        assert_eq!(a2.container, a1.container);
        assert!(a2.cost.is_zero());
    }

    #[test]
    fn keepalive_expires_after_ttl() {
        let mut e = engine();
        let mut p = FixedKeepAlive::new(SimDuration::from_mins(15));
        let a1 = exec_once(&mut e, &mut p, SimTime::from_secs(0));
        // 30 minutes later (the Fig. 1 idle gap): expired, cold again.
        let later = SimTime::from_secs(30 * 60);
        let a2 = exec_once(&mut e, &mut p, later);
        assert!(a2.cold);
        assert_ne!(a2.container, a1.container);
        // The expired container was actually removed from the engine.
        assert_eq!(e.state(a1.container), ContainerState::Removed);
    }

    #[test]
    fn keepalive_no_cross_config_reuse() {
        let mut e = engine();
        let mut p = FixedKeepAlive::aws_default();
        let a1 = p.acquire(&mut e, &cfg(), SimTime::ZERO).unwrap();
        let work = containersim::engine::ExecWork::light(SimDuration::from_millis(5));
        let out = e.begin_exec(a1.container, work, SimTime::ZERO).unwrap();
        e.end_exec(a1.container, SimTime::ZERO + out.latency)
            .unwrap();
        p.release(&mut e, a1.container, SimTime::ZERO + out.latency)
            .unwrap();

        // Different image ⇒ different config ⇒ no reuse.
        let other = ContainerConfig::bridge(ImageId::parse("golang:1.13"));
        let a2 = p.acquire(&mut e, &other, SimTime::from_secs(1)).unwrap();
        assert!(a2.cold);
        assert_eq!(p.warm_count(), 1, "python container still warm");
    }

    #[test]
    fn periodic_warmup_never_expires_but_pays_pings() {
        let mut e = engine();
        let mut p = PeriodicWarmup::new(SimDuration::from_mins(5));
        let a1 = exec_once(&mut e, &mut p, SimTime::from_secs(0));
        assert!(a1.cold);
        let bg_before = p.background_cost();
        // Two hours later: still warm (no expiry), but pings accumulated.
        let a2 = exec_once(&mut e, &mut p, SimTime::from_secs(7200));
        assert!(!a2.cold);
        assert!(p.background_cost() > bg_before, "pings must be charged");
    }

    #[test]
    fn keepalive_pools_parallel_containers() {
        let mut e = engine();
        let mut p = FixedKeepAlive::aws_default();
        // Two overlapping requests ⇒ two cold containers.
        let a1 = p.acquire(&mut e, &cfg(), SimTime::ZERO).unwrap();
        let a2 = p.acquire(&mut e, &cfg(), SimTime::ZERO).unwrap();
        assert!(a1.cold && a2.cold);
        assert_ne!(a1.container, a2.container);
        let work = containersim::engine::ExecWork::light(SimDuration::from_millis(5));
        for id in [a1.container, a2.container] {
            let out = e.begin_exec(id, work, SimTime::ZERO).unwrap();
            e.end_exec(id, SimTime::ZERO + out.latency).unwrap();
            p.release(&mut e, id, SimTime::from_secs(1)).unwrap();
        }
        assert_eq!(p.warm_count(), 2);
        // Both become reusable.
        let b1 = p.acquire(&mut e, &cfg(), SimTime::from_secs(2)).unwrap();
        let b2 = p.acquire(&mut e, &cfg(), SimTime::from_secs(2)).unwrap();
        assert!(!b1.cold && !b2.cold);
    }
}
