//! The checker's weak-memory store model.
//!
//! Each atomic location keeps its whole modification order (the list of
//! stores, in the order they executed). A load does **not** have to read the
//! newest store: any store not yet overwritten *from the reading thread's
//! point of view* is a legal result, which is how `Relaxed` message-passing
//! bugs reproduce deterministically on x86 hosts.
//!
//! Visibility rule — thread `T` at location `L` may read store `S_i` iff:
//!
//! 1. `i >= seen[T][L]` (per-thread coherence floor: `T` never reads older
//!    than something it already read or wrote at `L`), and
//! 2. there is no later store `S_j` (`j > i`) whose *store event*
//!    happens-before `T`'s current point (if `T` has observed `S_j`, every
//!    older store is dead to it).
//!
//! Synchronization: a `Release`-class store snapshots the writer's vector
//! clock into the store's message clock; an `Acquire`-class load that reads
//! it joins that clock (release/acquire hand-off). RMWs always read the
//! newest store (C11 requires exactly that) and continue release sequences:
//! a `Relaxed` RMW forwards the previous store's message clock unchanged.
//!
//! Documented simplifications (see DESIGN.md §7.3): modification order is
//! execution order; a *failed* CAS reads the newest store (conservative —
//! fewer stale behaviours explored than C11 allows); `SeqCst` is modelled as
//! `AcqRel` plus read-newest, with no global SC order; fences are not
//! modelled (the protocol under test uses none).

use super::clock::VClock;
use std::sync::atomic::Ordering;

/// Whether `o` has acquire semantics on its load half.
pub fn acquire_class(o: Ordering) -> bool {
    // lint:allow(atomic-seqcst, classifying the caller's ordering, not performing a fence)
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

/// Whether `o` has release semantics on its store half.
pub fn release_class(o: Ordering) -> bool {
    // lint:allow(atomic-seqcst, classifying the caller's ordering, not performing a fence)
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One store in a location's modification order.
#[derive(Debug, Clone)]
pub struct Store {
    /// Stored value.
    pub value: u64,
    /// Writing virtual thread.
    pub writer: usize,
    /// The writer's own clock component at the store event — `(writer, tick)`
    /// identifies the event for happens-before tests.
    pub tick: u32,
    /// Release-sequence message clock: acquire readers join this. `None` for
    /// a plain `Relaxed` store (which also breaks the sequence).
    pub msg: Option<VClock>,
}

/// One atomic location: label plus full modification order.
#[derive(Debug)]
pub struct Location {
    /// Diagnostic name used in traces (`L0`, `L1`, … in first-touch order).
    pub label: String,
    /// Modification order; index 0 is the initial value (a pseudo-store by
    /// "thread 0, tick 0", which happens-before every thread).
    pub stores: Vec<Store>,
}

/// All locations touched during one execution, plus per-thread coherence
/// floors.
#[derive(Debug, Default)]
pub struct Memory {
    locs: Vec<Location>,
    /// `seen[tid][loc]` — lowest modification-order index `tid` may still
    /// read at `loc` (grown on demand).
    seen: Vec<Vec<usize>>,
}

impl Memory {
    /// Registers a new location holding `initial`; returns its index.
    pub fn register(&mut self, initial: u64) -> usize {
        let idx = self.locs.len();
        self.locs.push(Location {
            label: format!("L{idx}"),
            stores: vec![Store {
                value: initial,
                writer: 0,
                tick: 0,
                msg: None,
            }],
        });
        idx
    }

    /// The location's diagnostic label.
    pub fn label(&self, loc: usize) -> &str {
        &self.locs[loc].label
    }

    /// Newest store index and value.
    pub fn latest(&self, loc: usize) -> (usize, u64) {
        let stores = &self.locs[loc].stores;
        (stores.len() - 1, stores[stores.len() - 1].value)
    }

    fn floor(&mut self, tid: usize, loc: usize) -> usize {
        if self.seen.len() <= tid {
            self.seen.resize_with(tid + 1, Vec::new);
        }
        if self.seen[tid].len() <= loc {
            self.seen[tid].resize(loc + 1, 0);
        }
        self.seen[tid][loc]
    }

    fn set_floor(&mut self, tid: usize, loc: usize, idx: usize) {
        let cur = self.floor(tid, loc);
        self.seen[tid][loc] = cur.max(idx);
    }

    /// Store indices thread `tid` (with clock `vc`) may legally read at
    /// `loc`, newest first — so choice 0 is always the strongest (x86-like)
    /// behaviour and stale reads are the explored alternatives.
    pub fn candidates(&mut self, tid: usize, loc: usize, vc: &VClock) -> Vec<usize> {
        let mut lo = self.floor(tid, loc);
        let stores = &self.locs[loc].stores;
        for (j, s) in stores.iter().enumerate().skip(lo + 1).rev() {
            if vc.observed(s.writer, s.tick) {
                lo = j;
                break;
            }
        }
        (lo..stores.len()).rev().collect()
    }

    /// Reads store `idx` at `loc`: updates the coherence floor and, for an
    /// acquire-class load of a release-sequence store, joins its message
    /// clock. Returns the value.
    pub fn read(
        &mut self,
        tid: usize,
        loc: usize,
        idx: usize,
        o: Ordering,
        vc: &mut VClock,
    ) -> u64 {
        self.set_floor(tid, loc, idx);
        let s = &self.locs[loc].stores[idx];
        if acquire_class(o) {
            if let Some(msg) = &s.msg {
                vc.join(msg);
            }
        }
        s.value
    }

    /// Appends a plain store (not an RMW). `vc` must already be ticked for
    /// this event. A release-class store starts a new release sequence; a
    /// relaxed one carries no message clock (and breaks any prior sequence).
    pub fn write(&mut self, tid: usize, loc: usize, value: u64, o: Ordering, vc: &VClock) {
        let msg = release_class(o).then(|| vc.clone());
        let idx = self.locs[loc].stores.len();
        self.locs[loc].stores.push(Store {
            value,
            writer: tid,
            tick: vc.get(tid),
            msg,
        });
        self.set_floor(tid, loc, idx);
    }

    /// Performs the read+write halves of a successful RMW: reads the newest
    /// store (acquire-joining per `o`), appends `new`, and continues the
    /// release sequence (a relaxed RMW forwards the previous message clock;
    /// a release-class RMW additionally merges its own clock in). `vc` must
    /// already be ticked. Returns the value read.
    pub fn rmw(&mut self, tid: usize, loc: usize, new: u64, o: Ordering, vc: &mut VClock) -> u64 {
        let (idx, old) = self.latest(loc);
        let prev_msg = self.locs[loc].stores[idx].msg.clone();
        if acquire_class(o) {
            if let Some(msg) = &prev_msg {
                vc.join(msg);
            }
        }
        let msg = match (release_class(o), prev_msg) {
            (true, Some(mut m)) => {
                m.join(vc);
                Some(m)
            }
            (true, None) => Some(vc.clone()),
            (false, carried) => carried,
        };
        self.locs[loc].stores.push(Store {
            value: new,
            writer: tid,
            tick: vc.get(tid),
            msg,
        });
        self.set_floor(tid, loc, idx + 1);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_reads_are_candidates_until_observed() {
        let mut m = Memory::default();
        let mut w = VClock::new();
        let mut r = VClock::new();
        let l = m.register(0);
        w.tick(1);
        m.write(1, l, 7, Ordering::Relaxed, &w);
        // Reader with no synchronization may read initial 0 or the 7.
        assert_eq!(m.candidates(2, l, &r), vec![1, 0]);
        // After observing the store event (e.g. via some acquire chain), the
        // initial value is dead.
        r.join(&w);
        assert_eq!(m.candidates(2, l, &r), vec![1]);
    }

    #[test]
    fn coherence_floor_is_per_thread_monotonic() {
        let mut m = Memory::default();
        let mut w = VClock::new();
        let mut r = VClock::new();
        let l = m.register(0);
        for v in [1u64, 2] {
            w.tick(1);
            m.write(1, l, v, Ordering::Relaxed, &w);
        }
        assert_eq!(m.candidates(2, l, &r), vec![2, 1, 0]);
        assert_eq!(m.read(2, l, 1, Ordering::Relaxed, &mut r), 1);
        // Having read store #1, the reader can never go back to #0.
        assert_eq!(m.candidates(2, l, &r), vec![2, 1]);
    }

    #[test]
    fn release_acquire_transfers_clock_and_relaxed_does_not() {
        let mut m = Memory::default();
        let mut w = VClock::new();
        let l = m.register(0);
        w.tick(1);
        m.write(1, l, 5, Ordering::Release, &w);

        let mut acq = VClock::new();
        assert_eq!(m.read(2, l, 1, Ordering::Acquire, &mut acq), 5);
        assert!(acq.observed(1, 1), "acquire read joined the release clock");

        let mut rlx = VClock::new();
        assert_eq!(m.read(3, l, 1, Ordering::Relaxed, &mut rlx), 5);
        assert!(!rlx.observed(1, 1), "relaxed read does not synchronize");
    }

    #[test]
    fn relaxed_rmw_continues_release_sequence() {
        let mut m = Memory::default();
        let mut w = VClock::new();
        let l = m.register(0);
        w.tick(1);
        m.write(1, l, 1, Ordering::Release, &w);
        // Another thread's Relaxed RMW must forward the release clock.
        let mut t2 = VClock::new();
        t2.tick(2);
        assert_eq!(m.rmw(2, l, 9, Ordering::Relaxed, &mut t2), 1);
        assert!(!t2.observed(1, 1), "relaxed RMW itself does not acquire");
        let mut acq = VClock::new();
        assert_eq!(m.read(3, l, 2, Ordering::Acquire, &mut acq), 9);
        assert!(
            acq.observed(1, 1),
            "acquire of the RMW store synchronizes with the sequence head"
        );
    }
}
