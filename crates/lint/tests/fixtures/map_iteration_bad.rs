//! lint-fixture-path: crates/predictor/src/fixture.rs
use std::collections::HashMap;
struct S { m: HashMap<u64, u64> }
fn f(s: &S) {
    for (k, v) in s.m.iter() {
        let _ = (k, v);
    }
}
