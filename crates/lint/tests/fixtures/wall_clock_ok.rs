//! lint-fixture-path: crates/bench/src/fixture.rs
fn f() {
    let _t = Instant::now();
}
