//! Latency recording with exact percentiles.
//!
//! The figure harness needs exact per-request latency sequences (Figs. 9,
//! 12–14 plot request index against latency), plus summary percentiles for
//! the long-tail analysis of Fig. 1(b). Sample counts are small (thousands),
//! so keeping the raw samples is the simplest correct choice.

use crate::stats::StreamingStats;
use simclock::SimDuration;

/// Records a sequence of request latencies.
///
/// ```
/// use metrics_lite::LatencyRecorder;
/// use simclock::SimDuration;
///
/// let mut rec = LatencyRecorder::new();
/// for ms in [60, 62, 61, 925, 60] { // one cold start
///     rec.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(rec.median().as_millis(), 61);
/// assert_eq!(rec.max().as_millis(), 925);
/// assert!(rec.tail_ratio() > 10.0); // the long tail of Fig. 1(b)
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<SimDuration>,
    stats: StreamingStats,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples.push(latency);
        self.stats.push(latency.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw sample sequence, in arrival order.
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.stats.mean())
    }

    /// Minimum latency (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.stats.min())
        }
    }

    /// Maximum latency (zero when empty).
    pub fn max(&self) -> SimDuration {
        if self.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.stats.max())
        }
    }

    /// Exact percentile by the nearest-rank method. `q` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the recorder is empty or `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!(!self.is_empty(), "percentile of empty recorder");
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median latency.
    pub fn median(&self) -> SimDuration {
        self.percentile(0.5)
    }

    /// Tail amplification: p99 / p50 — the paper's long-tail observation for
    /// Fig. 1(b) ("99 % of latency is almost the same" locally vs
    /// "significant long tail" in serverless).
    pub fn tail_ratio(&self) -> f64 {
        let p50 = self.median().as_secs_f64();
        if p50 == 0.0 {
            return 1.0;
        }
        self.percentile(0.99).as_secs_f64() / p50
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn summary_statistics() {
        let mut r = LatencyRecorder::new();
        for v in [10, 20, 30, 40, 50] {
            r.record(ms(v));
        }
        assert_eq!(r.count(), 5);
        assert_eq!(r.mean().as_millis(), 30);
        assert_eq!(r.min().as_millis(), 10);
        assert_eq!(r.max().as_millis(), 50);
        assert_eq!(r.median().as_millis(), 30);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100 {
            r.record(ms(v));
        }
        assert_eq!(r.percentile(0.5).as_millis(), 50);
        assert_eq!(r.percentile(0.99).as_millis(), 99);
        assert_eq!(r.percentile(1.0).as_millis(), 100);
        assert_eq!(r.percentile(0.0).as_millis(), 1); // clamped to rank 1
    }

    #[test]
    fn tail_ratio_flags_long_tail() {
        // Uniform latencies: ratio near 1.
        let mut flat = LatencyRecorder::new();
        for _ in 0..100 {
            flat.record(ms(100));
        }
        assert!((flat.tail_ratio() - 1.0).abs() < 1e-9);

        // One in ten requests is a 10× cold start: heavy tail.
        let mut cold = LatencyRecorder::new();
        for i in 0..100 {
            cold.record(ms(if i % 10 == 0 { 1000 } else { 100 }));
        }
        assert!(cold.tail_ratio() > 5.0);
    }

    #[test]
    fn empty_recorder_defaults() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert_eq!(r.min(), SimDuration::ZERO);
        assert_eq!(r.max(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile of empty recorder")]
    fn empty_percentile_panics() {
        LatencyRecorder::new().percentile(0.5);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(ms(10));
        let mut b = LatencyRecorder::new();
        b.record(ms(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_millis(), 20);
    }

    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn prop_percentiles_monotone() {
        testkit::check(64, |g| {
            let vals = g.vec(1..200, |g| g.u64_in(1..100_000));
            let q1 = g.f64_in(0.0..1.0);
            let q2 = g.f64_in(0.0..1.0);
            let mut r = LatencyRecorder::new();
            for &v in &vals {
                r.record(SimDuration::from_nanos(v));
            }
            let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            assert!(r.percentile(lo_q) <= r.percentile(hi_q));
            assert!(r.percentile(0.0) >= r.min());
            assert!(r.percentile(1.0) <= r.max());
        });
    }
}
