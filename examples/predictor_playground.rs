//! Predictor playground: feed any of several demand shapes to all predictors
//! and compare their one-step-ahead accuracy (the machinery behind HotC's
//! adaptive controller and the Fig. 10 analysis).
//!
//! ```text
//! cargo run --example predictor_playground
//! ```

use hotc_repro::prelude::*;
use predictor::{
    mape, one_step_ahead, EsMarkov, ExponentialSmoothing, HistogramPredictor, Holt, LastValue,
    MarkovChain, MovingAverage, Predictor, RegionPartition,
};
use workloads::youtube::{youtube_trace, YoutubeTraceParams};

fn shapes() -> Vec<(&'static str, Vec<f64>)> {
    let mut rng = simclock::SimRng::seeded(17);
    vec![
        ("constant-8", vec![8.0; 40]),
        (
            "step-8-to-19",
            (0..40).map(|i| if i < 20 { 8.0 } else { 19.0 }).collect(),
        ),
        (
            "sawtooth-4-16",
            (0..40)
                .map(|i| if i % 2 == 0 { 4.0 } else { 16.0 })
                .collect(),
        ),
        (
            "noisy-ramp",
            (0..40)
                .map(|i| i as f64 * 0.5 + rng.uniform_u64(0, 3) as f64)
                .collect(),
        ),
        ("youtube-day", {
            let p = YoutubeTraceParams {
                length: 96, // 15-minute indices
                seed: 3,
                ..Default::default()
            };
            youtube_trace(&p).into_iter().map(|r| r / 10.0).collect()
        }),
    ]
}

fn main() {
    let mut table = Table::new(
        "one-step-ahead MAPE (%) per predictor and demand shape",
        &[
            "shape",
            "last",
            "ma(5)",
            "es(0.8)",
            "holt",
            "markov",
            "es+markov",
            "hist(p95)",
        ],
    );

    for (name, series) in shapes() {
        let actual = &series[1..];
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(LastValue::new()),
            Box::new(MovingAverage::new(5)),
            Box::new(ExponentialSmoothing::paper_default()),
            Box::new(Holt::new(0.8, 0.3)),
            Box::new(MarkovChain::new(RegionPartition::from_history(&series, 6))),
            Box::new(EsMarkov::paper_default()),
            Box::new(HistogramPredictor::new(0.95)),
        ];
        let mut cells = vec![name.to_string()];
        for p in predictors.iter_mut() {
            let preds = one_step_ahead(p.as_mut(), &series);
            cells.push(format!("{:.1}", mape(&preds, actual) * 100.0));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
    println!(
        "es+markov (HotC's predictor) matches ES on smooth shapes and wins on recurring\n\
         volatility like the sawtooth — the paper's §IV-C motivation"
    );
}
