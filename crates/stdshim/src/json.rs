//! Minimal JSON reader/writer for experiment and benchmark artifacts.
//!
//! The workspace's primary JSON direction is results out to disk
//! (`BENCH_*.json`, figure artifacts): a [`JsonValue`] tree, a [`ToJson`]
//! trait, and a serializer. Result structs implement [`ToJson`] by hand,
//! which keeps the output schema explicit and reviewable — there is no
//! derive machinery.
//!
//! The CI perf-gate binary also needs to read those artifacts back, so
//! [`JsonValue::parse`] provides the matching recursive-descent parser
//! (strict JSON, byte-offset errors, bounded nesting depth) together with
//! the typed accessors ([`JsonValue::get`], [`JsonValue::as_f64`], …) gate
//! checks are written against.
//!
//! Object fields keep insertion order so emitted files are stable and
//! diffable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (emitted without a decimal point).
    Int(i64),
    /// Floating-point number. Non-finite values serialize as `null`, since
    /// JSON has no NaN/Infinity.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(name, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn array<T: ToJson>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Serializes with two-space indentation, for human-inspected artifacts.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` keeps a decimal point or exponent, so the value
                    // round-trips as a float (`1.0`, not `1`).
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(colon);
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

impl JsonValue {
    /// Parses a complete JSON document (strict grammar, no trailing data
    /// other than whitespace). Errors carry the byte offset and a short
    /// message; nesting deeper than 128 levels is rejected rather than
    /// risking stack exhaustion on hostile input.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup: `Some(value)` if `self` is an object containing
    /// `key` (first occurrence wins), else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (`Int` widens), else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer value, else `None` (floats do not truncate).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean value, else `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, else `None`.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error from [`JsonValue::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    /// Consumes `lit` if the input starts with it here.
    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundaries sit on ASCII delimiters, so this is
            // always valid UTF-8 (the input is &str to begin with).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        // Delegating validation to the std float parser keeps the grammar
        // slightly lax (e.g. `1.`), which is fine for our own artifacts.
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`JsonValue`]; the workspace's replacement for
/// `#[derive(Serialize)]`.
pub trait ToJson {
    /// Renders `self` as a JSON tree.
    fn to_json(&self) -> JsonValue;
}

/// Compact serialization (no whitespace); `to_string()` comes for free.
impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        // u64 can exceed i64; fall back to float for the astronomically
        // large values (only plausible for raw nanosecond counters).
        match i64::try_from(*self) {
            Ok(i) => JsonValue::Int(i),
            Err(_) => JsonValue::Float(*self as f64),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<K: std::fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(true.to_json().to_string(), "true");
        assert_eq!(42u32.to_json().to_string(), "42");
        assert_eq!((-7i64).to_json().to_string(), "-7");
        assert_eq!(1.5f64.to_json().to_string(), "1.5");
        assert_eq!("hi".to_json().to_string(), "\"hi\"");
    }

    #[test]
    fn floats_stay_floats() {
        // A whole-number float must keep its decimal point.
        assert_eq!(1.0f64.to_json().to_string(), "1.0");
        assert_eq!(f64::NAN.to_json().to_string(), "null");
        assert_eq!(f64::INFINITY.to_json().to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(s.to_json().to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn collections_nest() {
        let v = JsonValue::object([
            ("name", "pool".to_json()),
            ("samples", vec![1u64, 2, 3].to_json()),
            ("p99", 1.25f64.to_json()),
            ("skipped", JsonValue::Null),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"pool","samples":[1,2,3],"p99":1.25,"skipped":null}"#
        );
    }

    #[test]
    fn field_order_preserved() {
        let v = JsonValue::object([("z", 1u8.to_json()), ("a", 2u8.to_json())]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_print_indents() {
        let v = JsonValue::object([("xs", vec![1u8].to_json())]);
        assert_eq!(v.to_pretty_string(), "{\n  \"xs\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_compact() {
        assert_eq!(JsonValue::Array(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(JsonValue::Object(vec![]).to_string(), "{}");
    }

    #[test]
    fn huge_u64_degrades_to_float() {
        let v = u64::MAX.to_json().to_string();
        assert!(v.contains('e') || v.contains('.'), "got {v}");
    }

    #[test]
    fn options_and_maps() {
        let mut m = BTreeMap::new();
        m.insert("k", Some(3u8));
        m.insert("gone", None);
        assert_eq!(m.to_json().to_string(), r#"{"gone":null,"k":3}"#);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = JsonValue::object([
            ("name", "pool\n\"x\"".to_json()),
            ("samples", vec![1u64, 2, 3].to_json()),
            ("p99", 1.25f64.to_json()),
            ("neg", (-7i64).to_json()),
            ("flag", true.to_json()),
            ("skipped", JsonValue::Null),
            (
                "nested",
                JsonValue::object([("deep", vec![0.5f64].to_json())]),
            ),
        ]);
        assert_eq!(JsonValue::parse(&v.to_string()).expect("compact"), v);
        assert_eq!(JsonValue::parse(&v.to_pretty_string()).expect("pretty"), v);
    }

    #[test]
    fn parse_scalars_and_numbers() {
        assert_eq!(JsonValue::parse(" null ").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(JsonValue::parse("1.5e2").unwrap(), JsonValue::Float(150.0));
        // Integer overflowing i64 degrades to float instead of erroring.
        assert!(matches!(
            JsonValue::parse("99999999999999999999").unwrap(),
            JsonValue::Float(_)
        ));
    }

    #[test]
    fn parse_string_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair for 𝄞 (U+1D11E).
        let v = JsonValue::parse(r#""𝄞""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1D11E}"));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for (input, needle) in [
            ("", "end of input"),
            ("[1, 2", "expected ',' or ']'"),
            ("{\"a\" 1}", "expected ':'"),
            ("\"abc", "unterminated"),
            ("[1] tail", "trailing"),
            ("nul", "unexpected character"),
            (r#""\ud834""#, "unpaired surrogate"),
        ] {
            let err = JsonValue::parse(input).expect_err(input);
            assert!(
                err.message.contains(needle),
                "input {input:?}: got {:?}, wanted {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn parse_rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = JsonValue::parse(&deep).expect_err("deep nesting");
        assert!(err.message.contains("nesting too deep"));
    }

    #[test]
    fn accessors_select_by_type() {
        let v = JsonValue::parse(r#"{"a": 1, "b": 2.5, "c": "x", "d": [1]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_i64), Some(1));
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(
            v.get("b").and_then(JsonValue::as_i64),
            None,
            "no truncation"
        );
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("d").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("a"), None);
    }
}
