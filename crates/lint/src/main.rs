//! `hotc-lint` — the workspace conformance analyzer.
//!
//! Scans every `.rs` and `Cargo.toml` file in the workspace (excluding
//! `target/`, VCS/tooling directories, and lint fixture corpora) and
//! enforces the determinism and concurrency rules documented in DESIGN.md
//! §7. Deny by default: any violation exits 1; the only escape is a
//! reasoned `// lint:allow(rule, reason)` on or directly above the
//! offending line.
//!
//! Usage: `cargo run -p hotc-lint [-- --json] [workspace-root]`.
//! `--json` emits the machine-readable report (CI archives it as an
//! artifact); human diagnostics then go to stderr so stdout stays pure
//! JSON.

use hotc_lint::{lint_workspace, workspace_root};
use std::path::PathBuf;
use stdshim::ToJson;

fn run() -> i32 {
    let mut json = false;
    let mut root_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            root_arg = Some(PathBuf::from(arg));
        }
    }
    let root = workspace_root(root_arg);
    let outcome = match lint_workspace(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("hotc-lint: {e}");
            return 2;
        }
    };

    if json {
        println!("{}", outcome.to_json().to_pretty_string());
    }
    if outcome.is_clean() {
        if !json {
            println!("hotc-lint: clean ({} files)", outcome.scanned);
        }
        return 0;
    }
    for v in &outcome.violations {
        let line = format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    eprintln!(
        "hotc-lint: {} violation(s) in {} file(s) scanned — fix, or annotate with \
         `// lint:allow(rule, reason)` (see DESIGN.md §7)",
        outcome.violations.len(),
        outcome.scanned
    );
    1
}

fn main() {
    std::process::exit(run());
}
