//! Non-poisoning synchronization primitives over `std::sync`.
//!
//! The concurrent experiment drivers want parking_lot-style ergonomics:
//! `.lock()` / `.read()` / `.write()` return guards directly instead of a
//! `Result` wrapping poison state. In this workspace a panic while holding a
//! lock only ever happens when a test assertion already failed, so poison
//! recovery adds nothing but call-site noise — these wrappers simply clear
//! the poison flag and hand out the guard.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free. A poisoned lock (a
    /// panic on another thread while holding it) is treated as unlocked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_try_lock_contended() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the value is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_try_write_blocked_by_reader() {
        let l = RwLock::new(0);
        let guard = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(guard);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 6;
        assert_eq!(*m.lock(), 6);
        let mut l = RwLock::new(5);
        *l.get_mut() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8_000);
    }
}
