//! Discrete-event workload driver.
//!
//! Feeds a time-ordered [`Arrival`] sequence through a gateway. Requests
//! overlap naturally: each arrival `begin`s immediately and its `finish` is
//! scheduled at the request's `t4`, so simultaneous requests occupy separate
//! containers — exactly how the parallel/burst experiments must behave.
//! Provider maintenance (`tick`) runs at a fixed interval, *before* arrivals
//! that share the same instant (the controller acts at round boundaries).

use faas::gateway::Gateway;
use faas::{RequestTrace, RuntimeProvider};
use simclock::{SimDuration, SimTime, Simulation};
use workloads::Arrival;

/// Result of driving a workload to completion.
pub struct RunOutcome<P: RuntimeProvider> {
    /// The gateway after the run (provider/engine inspection).
    pub gateway: Gateway<P>,
    /// One trace per arrival, in arrival order.
    pub traces: Vec<RequestTrace>,
    /// Virtual time at which the last event completed.
    pub finished_at: SimTime,
    /// Live-container count sampled at every tick — the resource-footprint
    /// timeline used by the policy comparisons.
    pub live_samples: Vec<(SimTime, usize)>,
}

impl<P: RuntimeProvider> RunOutcome<P> {
    /// Latencies in arrival order.
    pub fn latencies(&self) -> Vec<SimDuration> {
        self.traces.iter().map(|t| t.total()).collect()
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.traces.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.traces.iter().map(|t| t.total()).sum();
        total / self.traces.len() as u64
    }

    /// Fraction of requests that cold-started.
    pub fn cold_fraction(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().filter(|t| t.cold).count() as f64 / self.traces.len() as f64
    }

    /// Fraction of requests whose function process crashed.
    pub fn failed_fraction(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().filter(|t| t.failed).count() as f64 / self.traces.len() as f64
    }

    /// Telemetry snapshot of the run: per-stage decomposition, counters,
    /// and the `pool/live` series sampled at every tick.
    pub fn metrics_snapshot(&self) -> metrics_lite::MetricsSnapshot {
        self.gateway.metrics().snapshot()
    }

    /// Mean live containers across the tick samples — a resource-footprint
    /// proxy ("container-hours") for comparing keep-warm policies.
    pub fn mean_live_containers(&self) -> f64 {
        if self.live_samples.is_empty() {
            return 0.0;
        }
        self.live_samples
            .iter()
            .map(|&(_, n)| n as f64)
            .sum::<f64>()
            / self.live_samples.len() as f64
    }
}

struct DriverState<P: RuntimeProvider> {
    gateway: Gateway<P>,
    traces: Vec<(usize, RequestTrace)>,
    live_samples: Vec<(SimTime, usize)>,
}

/// Drives `workload` through `gateway`. `route` maps an arrival's
/// `config_id` to the function name to invoke; `tick_interval` is the
/// provider maintenance cadence.
pub fn run_workload<P>(
    gateway: Gateway<P>,
    workload: &[Arrival],
    route: impl Fn(usize) -> String,
    tick_interval: SimDuration,
) -> RunOutcome<P>
where
    P: RuntimeProvider + 'static,
{
    assert!(
        workloads::is_time_ordered(workload),
        "workload must be time-ordered"
    );
    assert!(!tick_interval.is_zero(), "tick interval must be positive");

    let mut sim = Simulation::new(DriverState {
        gateway,
        traces: Vec::new(),
        live_samples: Vec::new(),
    });

    // Provider maintenance ticks, scheduled FIRST so that at equal
    // timestamps the tick precedes the arrivals (FIFO tie-break).
    let horizon = workload
        .last()
        .map(|a| a.at + tick_interval * 2)
        .unwrap_or(SimTime::ZERO);
    let mut t = SimTime::ZERO;
    while t <= horizon {
        sim.schedule_at(t, move |s, st: &mut DriverState<P>| {
            st.gateway.tick(s.now()).expect("tick must not fail");
            let live = st.gateway.engine().live_count();
            st.gateway
                .metrics()
                .sample_series("pool/live", s.now(), live as f64);
            st.live_samples.push((s.now(), live));
        });
        t += tick_interval;
    }

    for (idx, arrival) in workload.iter().enumerate() {
        let function = route(arrival.config_id);
        sim.schedule_at(arrival.at, move |s, st: &mut DriverState<P>| {
            let inflight = st
                .gateway
                .begin(&function, s.now())
                .expect("request must begin");
            s.schedule_at(inflight.t4_func_end, move |_, st: &mut DriverState<P>| {
                let trace = st.gateway.finish(inflight).expect("request must finish");
                st.traces.push((idx, trace));
            });
        });
    }

    sim.run();
    let finished_at = sim.now();
    let mut state = sim.into_state();
    state.traces.sort_by_key(|&(idx, _)| idx);
    let traces = state.traces.into_iter().map(|(_, t)| t).collect();
    RunOutcome {
        gateway: state.gateway,
        traces,
        finished_at,
        live_samples: state.live_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile};
    use faas::policy::{ColdStartAlways, FixedKeepAlive};
    use faas::AppProfile;
    use hotc::HotC;
    use workloads::patterns;

    fn gateway<P: RuntimeProvider>(provider: P) -> Gateway<P> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, provider);
        gw.register_app(AppProfile::random_number());
        gw
    }

    #[test]
    fn serial_workload_all_traced() {
        let w = patterns::serial(SimDuration::from_secs(30), 10, 0);
        let out = run_workload(
            gateway(FixedKeepAlive::aws_default()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.traces.len(), 10);
        assert!(out.traces[0].cold);
        assert!(out.traces[1..].iter().all(|t| !t.cold));
        // Traces are in arrival order.
        for w in out.traces.windows(2) {
            assert!(w[0].t1_gateway_in <= w[1].t1_gateway_in);
        }
    }

    #[test]
    fn overlapping_arrivals_occupy_separate_containers() {
        let w = patterns::parallel_clients(1, 1, SimDuration::from_secs(30));
        // Build a burst of 8 simultaneous arrivals manually.
        let burst = patterns::burst(8, 1, &[], 1, SimDuration::from_secs(30), 0);
        assert_eq!(burst.len(), 8);
        let out = run_workload(
            gateway(ColdStartAlways::new()),
            &burst,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.traces.len(), 8);
        assert!(out.traces.iter().all(|t| t.cold));
        drop(w);
    }

    #[test]
    fn hotc_run_reuses_and_ticks() {
        let w = patterns::serial(SimDuration::from_secs(30), 20, 0);
        let out = run_workload(
            gateway(HotC::with_defaults()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        assert!(out.cold_fraction() <= 0.1);
        assert!(out.mean_latency() < SimDuration::from_millis(120));
        assert!(out.finished_at >= SimTime::from_secs(19 * 30));
    }

    #[test]
    fn driver_populates_metrics_snapshot() {
        let w = patterns::serial(SimDuration::from_secs(30), 10, 0);
        let out = run_workload(
            gateway(FixedKeepAlive::aws_default()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        let snap = out.metrics_snapshot();
        assert_eq!(snap.counter("gateway/requests"), Some(10));
        assert_eq!(snap.counter("gateway/cold_starts"), Some(1));
        assert_eq!(snap.stage_count("all", metrics_lite::Stage::Exec), 10);
        // One pool/live point per tick, mirroring `live_samples`.
        let (_, series) = snap
            .series
            .iter()
            .find(|(n, _)| n == "pool/live")
            .expect("pool/live series present");
        assert_eq!(series.points().len(), out.live_samples.len());
        let trace_total: u64 = out.traces.iter().map(|t| t.total().as_nanos()).sum();
        assert_eq!(snap.scope_total_ns("all"), trace_total);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_workload_rejected() {
        let w = vec![
            workloads::Arrival {
                at: SimTime::from_secs(5),
                config_id: 0,
            },
            workloads::Arrival {
                at: SimTime::from_secs(1),
                config_id: 0,
            },
        ];
        let _ = run_workload(
            gateway(ColdStartAlways::new()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
    }
}
