//! A stable, timestamped event queue.
//!
//! [`EventQueue`] is a min-heap keyed by `(SimTime, sequence)`. The sequence
//! number makes ordering *stable*: two events scheduled for the same instant
//! pop in the order they were pushed, which keeps simulations deterministic
//! regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of events ordered by virtual timestamp with FIFO
/// tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at virtual instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event together with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// Popping always yields non-decreasing timestamps, and every pushed
    /// event comes back exactly once.
    #[test]
    fn prop_pop_order_sorted() {
        testkit::check(64, |g| {
            let times = g.vec(0..200, |g| g.u64_in(0..1_000));
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut seen = vec![false; times.len()];
            while let Some((at, idx)) = q.pop() {
                assert!(at >= last);
                last = at;
                assert!(!seen[idx]);
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s));
        });
    }

    /// FIFO tie-break: among events with equal timestamps, indices ascend.
    #[test]
    fn prop_fifo_within_timestamp() {
        testkit::check(64, |g| {
            let times = g.vec(0..100, |g| g.u64_in(0..5));
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last_per_time: std::collections::HashMap<u64, usize> = Default::default();
            while let Some((at, idx)) = q.pop() {
                if let Some(&prev) = last_per_time.get(&at.as_nanos()) {
                    assert!(idx > prev);
                }
                last_per_time.insert(at.as_nanos(), idx);
            }
        });
    }
}
