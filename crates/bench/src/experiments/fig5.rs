//! Figure 5 / §III-A: the six-timestamp latency decomposition.
//!
//! The paper instruments the gateway, watchdog, and function process and
//! finds that "compared to the function execution time and network
//! forwarding, function initiation time (2→3) dominates the total latency"
//! for cold requests. It adds: "we also evaluated OpenFaaS on edge platforms
//! such as Raspberry Pi and Nvidia Jetson TX2, and the results are much
//! similar". This experiment serves the random-number function cold and warm
//! on all three platforms and reports each segment.

use crate::experiments::gateway_on;
use containersim::HardwareProfile;
use faas::policy::{ColdStartAlways, FixedKeepAlive};
use faas::{AppProfile, RequestTrace};
use metrics_lite::Table;
use simclock::SimTime;

/// Cold/warm trace pair for one platform.
pub struct PlatformTraces {
    /// Platform name.
    pub platform: String,
    /// A cold request's trace.
    pub cold: RequestTrace,
    /// A warm (reused runtime) request's trace.
    pub warm: RequestTrace,
}

impl PlatformTraces {
    /// Fraction of the cold request spent in initiation (2→3).
    pub fn cold_initiation_share(&self) -> f64 {
        self.cold.initiation().as_secs_f64() / self.cold.total().as_secs_f64()
    }
}

/// Result of the Fig. 5 experiment.
pub struct Fig5Result {
    /// Server, Raspberry Pi 3, Jetson TX2 — in that order.
    pub platforms: Vec<PlatformTraces>,
    /// A cold request's trace on the server (back-compat accessor).
    pub cold: RequestTrace,
    /// A warm request's trace on the server.
    pub warm: RequestTrace,
}

fn measure(hw: HardwareProfile) -> PlatformTraces {
    let platform = hw.name.clone();
    let mut cold_gw = gateway_on(
        hw.clone(),
        ColdStartAlways::new(),
        &[AppProfile::random_number()],
    );
    let cold = cold_gw
        .handle("random-number", SimTime::ZERO)
        .expect("cold request");

    let mut warm_gw = gateway_on(
        hw,
        FixedKeepAlive::aws_default(),
        &[AppProfile::random_number()],
    );
    warm_gw
        .handle("random-number", SimTime::ZERO)
        .expect("priming request");
    let warm = warm_gw
        .handle("random-number", SimTime::from_secs(5))
        .expect("warm request");
    PlatformTraces {
        platform,
        cold,
        warm,
    }
}

/// Runs one cold and one warm request per platform.
pub fn run() -> Fig5Result {
    let platforms = vec![
        measure(HardwareProfile::server()),
        measure(HardwareProfile::raspberry_pi3()),
        measure(HardwareProfile::jetson_tx2()),
    ];
    let cold = platforms[0].cold;
    let warm = platforms[0].warm;
    Fig5Result {
        platforms,
        cold,
        warm,
    }
}

impl Fig5Result {
    /// Fraction of the server's cold request spent in initiation (2→3).
    pub fn cold_initiation_share(&self) -> f64 {
        self.platforms[0].cold_initiation_share()
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "Fig 5 / §III-A: request-path segment breakdown (ms)",
            &[
                "platform",
                "request",
                "1→2 fwd",
                "2→3 initiation",
                "3→4 exec",
                "4→6 return",
                "total",
                "init_share_%",
            ],
        );
        for p in &self.platforms {
            for (label, t) in [("cold", &p.cold), ("warm", &p.warm)] {
                let share = t.initiation().as_secs_f64() / t.total().as_secs_f64();
                table.row(&[
                    p.platform.clone(),
                    label.to_string(),
                    format!(
                        "{:.2}",
                        (t.t2_watchdog_in - t.t1_gateway_in).as_millis_f64()
                    ),
                    format!("{:.2}", t.initiation().as_millis_f64()),
                    format!("{:.2}", t.execution().as_millis_f64()),
                    format!("{:.2}", (t.t6_gateway_out - t.t4_func_end).as_millis_f64()),
                    format!("{:.2}", t.total().as_millis_f64()),
                    format!("{:.1}", share * 100.0),
                ]);
            }
        }
        let mut out = table.render();
        out.push_str(
            "(paper: initiation dominates cold requests on the server AND on the edge \
             platforms — 'the results are much similar')\n",
        );
        out
    }
}
