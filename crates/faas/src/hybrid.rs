//! Hybrid per-type keep-alive (the Azure practice reviewed in §III-B).
//!
//! "Researchers in Microsoft Azure \[27\] recently proposed using different
//! keep-alive values for workloads according to their actual invocation
//! frequency and patterns." [`HybridKeepAlive`] implements that idea: for
//! each runtime configuration it records the *idle gaps* between uses and
//! sets that type's keep-alive TTL to a high percentile of its observed gap
//! distribution (clamped to sane bounds). Frequently-invoked types get short
//! windows (little idle waste); rarely-invoked types get windows long enough
//! to still catch their next invocation.
//!
//! This is the strongest non-HotC baseline: unlike [`crate::FixedKeepAlive`]
//! it adapts per type, but unlike HotC it never *pre-warms* and sizes purely
//! from idle-gap history rather than concurrent demand.

use crate::{Acquisition, RuntimeProvider};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, EngineError};
use simclock::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Tuning for [`HybridKeepAlive`].
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Percentile of the idle-gap distribution to provision for.
    pub percentile: f64,
    /// Safety margin multiplied onto the percentile gap.
    pub margin: f64,
    /// TTL used until a type has enough gap samples.
    pub default_ttl: SimDuration,
    /// Samples needed before trusting the learned distribution.
    pub min_samples: usize,
    /// Lower clamp on learned TTLs.
    pub min_ttl: SimDuration,
    /// Upper clamp on learned TTLs.
    pub max_ttl: SimDuration,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            percentile: 0.99,
            margin: 1.1,
            default_ttl: SimDuration::from_mins(10),
            min_samples: 3,
            min_ttl: SimDuration::from_secs(15),
            max_ttl: SimDuration::from_mins(120),
        }
    }
}

#[derive(Debug, Default)]
struct TypeHistory {
    /// Observed idle gaps, oldest first (bounded ring: push at the back,
    /// evict at the front in O(1) instead of `Vec::remove(0)`'s O(n) shift).
    gaps: VecDeque<SimDuration>,
    /// The same gaps kept sorted, adjusted incrementally on each insert so
    /// `learned_ttl` — called per warm entry on every tick — never has to
    /// clone and re-sort the window.
    sorted: Vec<SimDuration>,
    /// When this type last went fully idle (release with no reuse since).
    idle_since: Option<SimTime>,
}

const GAP_WINDOW: usize = 256;

impl TypeHistory {
    fn record_gap(&mut self, gap: SimDuration) {
        if self.gaps.len() == GAP_WINDOW {
            if let Some(out) = self.gaps.pop_front() {
                // Every gap pushed into the window was also inserted into
                // the sorted view, so the evicted one is present.
                if let Ok(at) = self.sorted.binary_search(&out) {
                    self.sorted.remove(at);
                }
            }
        }
        self.gaps.push_back(gap);
        let at = self.sorted.binary_search(&gap).unwrap_or_else(|i| i);
        self.sorted.insert(at, gap);
    }

    fn learned_ttl(&self, cfg: &HybridConfig) -> SimDuration {
        if self.sorted.len() < cfg.min_samples {
            return cfg.default_ttl;
        }
        let rank = ((cfg.percentile * self.sorted.len() as f64).ceil() as usize)
            .clamp(1, self.sorted.len());
        self.sorted[rank - 1]
            .mul_f64(cfg.margin)
            .max(cfg.min_ttl)
            .min(cfg.max_ttl)
    }
}

#[derive(Debug, Clone, Copy)]
struct WarmEntry {
    container: ContainerId,
    idle_since: SimTime,
}

/// Per-type adaptive keep-alive provider.
///
/// ```
/// use containersim::{ContainerEngine, HardwareProfile};
/// use faas::{AppProfile, Gateway, HybridKeepAlive};
/// use simclock::{SimDuration, SimTime};
///
/// let engine = ContainerEngine::with_local_images(HardwareProfile::server());
/// let mut gateway = Gateway::new(engine, HybridKeepAlive::new());
/// gateway.register_app(AppProfile::random_number());
///
/// // Invoke on a steady 30 s cadence; the per-type TTL shrinks toward it.
/// let mut now = SimTime::ZERO;
/// for _ in 0..8 {
///     let trace = gateway.handle("random-number", now).unwrap();
///     now = trace.t4_func_end + SimDuration::from_secs(30);
/// }
/// let config = gateway.function("random-number").unwrap().config.clone();
/// assert!(gateway.provider().ttl_for(&config) < SimDuration::from_mins(2));
/// ```
#[derive(Debug)]
pub struct HybridKeepAlive {
    config: HybridConfig,
    warm: HashMap<ContainerConfig, Vec<WarmEntry>>,
    history: HashMap<ContainerConfig, TypeHistory>,
    background: SimDuration,
}

impl HybridKeepAlive {
    /// Creates the provider with default tuning.
    pub fn new() -> Self {
        Self::with_config(HybridConfig::default())
    }

    /// Creates the provider with explicit tuning.
    pub fn with_config(config: HybridConfig) -> Self {
        HybridKeepAlive {
            config,
            warm: HashMap::new(),
            history: HashMap::new(),
            background: SimDuration::ZERO,
        }
    }

    /// The TTL currently in force for a configuration (learned or default).
    pub fn ttl_for(&self, config: &ContainerConfig) -> SimDuration {
        self.history
            .get(config)
            .map(|h| h.learned_ttl(&self.config))
            .unwrap_or(self.config.default_ttl)
    }

    /// Number of currently warm containers.
    pub fn warm_count(&self) -> usize {
        self.warm.values().map(Vec::len).sum()
    }
}

impl Default for HybridKeepAlive {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeProvider for HybridKeepAlive {
    fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        self.tick(engine, now)?;
        // Record the idle gap this invocation ends (hit or miss: the gap is
        // a property of the invocation pattern, not of the pool's luck).
        let history = self.history.entry(config.clone()).or_default();
        if let Some(idle_since) = history.idle_since.take() {
            history.record_gap(now.duration_since(idle_since));
        }
        if let Some(entries) = self.warm.get_mut(config) {
            if let Some(entry) = entries.pop() {
                return Ok(Acquisition::warm(entry.container));
            }
        }
        let (container, cost) = engine.create_container(config.clone(), now)?;
        Ok(Acquisition::cold(container, cost))
    }

    fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<(), EngineError> {
        if engine.state(container) == containersim::ContainerState::Stopped {
            self.background += engine.stop_and_remove(container, now)?;
            return Ok(());
        }
        self.background += engine.cleanup(container, now)?;
        // `cleanup` succeeded, so the container is live and configured.
        let config = engine
            .config(container)
            .ok_or(EngineError::UnknownContainer(container))?
            .clone();
        self.history.entry(config.clone()).or_default().idle_since = Some(now);
        self.warm.entry(config).or_default().push(WarmEntry {
            container,
            idle_since: now,
        });
        Ok(())
    }

    fn tick(&mut self, engine: &mut ContainerEngine, now: SimTime) -> Result<(), EngineError> {
        let cfg = self.config;
        let mut expired: Vec<ContainerId> = Vec::new();
        for (config, entries) in self.warm.iter_mut() {
            let ttl = self
                .history
                .get(config)
                .map(|h| h.learned_ttl(&cfg))
                .unwrap_or(cfg.default_ttl);
            entries.retain(|e| {
                if now.duration_since(e.idle_since) > ttl {
                    expired.push(e.container);
                    false
                } else {
                    true
                }
            });
        }
        self.warm.retain(|_, v| !v.is_empty());
        for id in expired {
            self.background += engine.stop_and_remove(id, now)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "hybrid-keepalive"
    }

    fn background_cost(&self) -> SimDuration {
        self.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppProfile;
    use containersim::HardwareProfile;

    fn gateway() -> crate::Gateway<HybridKeepAlive> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = crate::Gateway::new(engine, HybridKeepAlive::new());
        gw.register_app(AppProfile::random_number());
        gw
    }

    fn drive_gaps(gw: &mut crate::Gateway<HybridKeepAlive>, gaps_s: &[u64]) -> SimTime {
        let mut now = SimTime::ZERO;
        for &gap in gaps_s {
            let trace = gw.handle("random-number", now).expect("request");
            now = trace.t4_func_end + SimDuration::from_secs(gap);
        }
        now
    }

    #[test]
    fn learns_short_ttl_for_frequent_type() {
        let mut gw = gateway();
        // Invoked every ~20 s, 12 times.
        drive_gaps(&mut gw, &[20; 12]);
        let config = gw.function("random-number").unwrap().config.clone();
        let ttl = gw.provider().ttl_for(&config);
        // p99 of ≈20 s gaps × 1.1 margin ≈ 22 s — far below the 10 min default.
        assert!(ttl < SimDuration::from_secs(40), "ttl={ttl}");
        assert!(ttl >= SimDuration::from_secs(15), "clamped at min_ttl");
    }

    #[test]
    fn learns_long_ttl_for_rare_type() {
        let mut gw = gateway();
        // Invoked every ~30 min; drive_gaps leaves `now` one gap after the
        // last release.
        let now = drive_gaps(&mut gw, &[1800; 8]);
        let config = gw.function("random-number").unwrap().config.clone();
        let ttl = gw.provider().ttl_for(&config);
        assert!(ttl > SimDuration::from_mins(30), "ttl={ttl}");
        // With the learned long window, the rare type is still warm at its
        // usual cadence (a fixed 10–15 min window would have expired it).
        let trace = gw.handle("random-number", now).expect("request");
        assert!(!trace.cold);
    }

    #[test]
    fn default_ttl_until_enough_samples() {
        let gw = gateway();
        let config = gw.function("random-number").unwrap().config.clone();
        assert_eq!(
            gw.provider().ttl_for(&config),
            HybridConfig::default().default_ttl
        );
    }

    #[test]
    fn short_window_expires_frequent_type_after_anomalous_gap() {
        let mut gw = gateway();
        let end = drive_gaps(&mut gw, &[20; 12]);
        // An anomalous 5-minute silence: far beyond the ~22 s learned TTL.
        gw.tick(end + SimDuration::from_mins(5)).expect("tick");
        assert_eq!(gw.provider().warm_count(), 0, "short TTL reclaimed it");
    }

    /// The ring-buffer rewrite must keep the exact sliding-window semantics
    /// of the old `Vec::remove(0)` + clone-and-sort implementation: once the
    /// window wraps, the oldest gap leaves both views and `learned_ttl`
    /// equals a from-scratch sort of the surviving window.
    #[test]
    fn gap_window_matches_naive_resort_across_wraparound() {
        let cfg = HybridConfig::default();
        let mut history = TypeHistory::default();
        let mut naive: Vec<SimDuration> = Vec::new();
        // Deterministic pseudo-random gaps with plenty of duplicates.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..(GAP_WINDOW * 2 + 17) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let gap = SimDuration::from_millis(1 + state % 50);
            history.record_gap(gap);
            if naive.len() == GAP_WINDOW {
                naive.remove(0);
            }
            naive.push(gap);

            let mut resorted = naive.clone();
            resorted.sort_unstable();
            assert_eq!(history.sorted, resorted, "diverged at insert {i}");
            assert_eq!(
                history.gaps.iter().copied().collect::<Vec<_>>(),
                naive,
                "ring order diverged at insert {i}"
            );
            let naive_hist = TypeHistory {
                gaps: naive.iter().copied().collect(),
                sorted: resorted,
                idle_since: None,
            };
            assert_eq!(history.learned_ttl(&cfg), naive_hist.learned_ttl(&cfg));
        }
        assert_eq!(history.gaps.len(), GAP_WINDOW);
        assert_eq!(history.sorted.len(), GAP_WINDOW);
    }

    #[test]
    fn ttl_clamped_to_max() {
        let cfg = HybridConfig {
            max_ttl: SimDuration::from_mins(30),
            ..Default::default()
        };
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = crate::Gateway::new(engine, HybridKeepAlive::with_config(cfg));
        gw.register_app(AppProfile::random_number());
        let mut now = SimTime::ZERO;
        for _ in 0..8 {
            let trace = gw.handle("random-number", now).expect("request");
            now = trace.t4_func_end + SimDuration::from_mins(120);
        }
        let config = gw.function("random-number").unwrap().config.clone();
        assert_eq!(gw.provider().ttl_for(&config), SimDuration::from_mins(30));
    }
}
