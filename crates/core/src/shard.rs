//! The sharded concurrent runtime pool (§IV-B at production scale).
//!
//! The paper's key-value pool shards naturally along the runtime key: a
//! key's slot never interacts with another key's slot except during global
//! eviction. [`ShardedPool`] interns each configuration into a dense
//! [`KeyId`] and places it on one of N shards round-robin — but the warm
//! hit itself no longer touches the shard lock at all. Each key owns a
//! fixed-capacity slot array indexed by two [`stdshim::sync::SlotBitmap`]
//! free-lists (`avail` and `in_use`), so a warm acquire is a claim-bit CAS
//! plus a container-handle load, and a warm release is the mirror image.
//!
//! Lock discipline (see DESIGN.md §5):
//!
//! * **warm hit: zero locks.** `acquire_id` claims an `avail` bit with a
//!   CAS and loads the packed container entry; `release` resolves the
//!   container through a lock-free reverse index and claims its `in_use`
//!   bit. Under `KeyPolicy::Exact` the request-path sanitizer scope asserts
//!   a lock depth of zero on this path in debug builds.
//! * **miss / cold start / evict / controller / GC: shard lock.** The shard
//!   `Mutex` serializes slot-array *occupancy* changes (which slot index
//!   holds which container) and the overflow lists; engine calls (container
//!   creation, cleanup, teardown) always happen outside it, one lock at a
//!   time, so cold starts on different keys overlap.
//! * **publish-before-bit-set.** A newly cold-started or pre-warmed
//!   container's packed entry and reverse-index mapping are stored *before*
//!   its bitmap bit is set, and the bit-set is a release store — a claimer's
//!   acquire-CAS therefore always observes a fully published slot.
//! * global eviction is a **two-phase scan**: collect available candidates
//!   shard by shard, pick the oldest via the engine, then re-lock the owning
//!   shard, re-verify the entry, and claim the victim's `avail` bit
//!   (retrying if a racing acquire took it first) — no operation ever takes
//!   all shard locks at once.
//!
//! The pool's bookkeeping invariants (enforced by the property tests):
//!
//! * `total_live() == engine.live_count()` at quiescence;
//! * a slot index is in `avail` or `in_use`, never both; a container is
//!   owned by at most one request at a time (the `in_use` bit is the
//!   ownership token a release must claim);
//! * the `free` bitmap (slot-array occupancy) and the overflow lists are
//!   mutated only under the shard lock, so a key's live population is exact
//!   whenever the lock is held — the controller's GC decisions can never
//!   race a half-finished warm operation into stranding a container;
//! * a slot exists only while a container of its type exists or existed
//!   within the last [`ShardedPool::gc_intervals`] demand snapshots — failed
//!   creates never materialize slots, and long-dead slots are garbage
//!   collected together with their controller state.

use crate::key::{needs_reconfig, KeyId, KeyInterner, KeyPolicy, RuntimeKey, FUZZY_RECONFIG_COST};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, CostBreakdown, EngineError};
use faas::Acquisition;
use simclock::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;
use stdshim::atomic::{Ordering, ShimAtomicU64 as AtomicU64, ShimAtomicUsize as AtomicUsize};
use stdshim::sync::{LazySlotTable, Mutex, SlotBitmap};
use stdshim::FastMap;

/// Default shard count — enough to spread a handful of worker threads'
/// runtime types without measurable cost for single-threaded use.
pub const DEFAULT_SHARDS: usize = 8;

/// Default number of consecutive zero-demand snapshots after which an empty
/// slot is garbage collected.
pub const DEFAULT_GC_INTERVALS: u32 = 3;

/// Lock-free slot-array capacity per key. Containers beyond this population
/// (or keys beyond the lock-free key table) spill into the shard-locked
/// overflow lists, trading the CAS fast path for unbounded capacity.
const SLOTS_PER_KEY: usize = 128;

/// Lock-free key table shape: `KEY_TABLE_CHUNKS × KEY_TABLE_CHUNK` dense key
/// ids are reachable without a lock.
const KEY_TABLE_CHUNKS: usize = 512;
const KEY_TABLE_CHUNK: usize = 64;

/// Container reverse-index shape (container id → packed key/slot).
const RINDEX_CHUNKS: usize = 4096;
const RINDEX_CHUNK: usize = 4096;

/// Scoped access to the container engine. The pool never holds a shard lock
/// across an engine call, so the engine guard's scope is chosen per call:
/// concurrent frontends implement this over a `Mutex<ContainerEngine>`,
/// single-threaded callers wrap their exclusive `&mut` in [`ExclusiveEngine`].
pub trait EngineRef {
    /// Runs `f` with exclusive access to the engine.
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R;
}

impl EngineRef for Mutex<ContainerEngine> {
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.lock())
    }
}

/// [`EngineRef`] over an exclusive borrow, for single-threaded callers
/// (`ContainerPool`, the HotC provider) that already own `&mut` access.
pub struct ExclusiveEngine<'a> {
    inner: std::cell::RefCell<&'a mut ContainerEngine>,
}

impl<'a> ExclusiveEngine<'a> {
    /// Wraps an exclusive engine borrow.
    pub fn new(engine: &'a mut ContainerEngine) -> Self {
        ExclusiveEngine {
            inner: std::cell::RefCell::new(engine),
        }
    }
}

impl EngineRef for ExclusiveEngine<'_> {
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

/// Packs a container handle and its has-executed flag into one atomic word:
/// `(id << 1) | execed`, with 0 meaning "slot empty" (engine ids start at 1).
fn pack_entry(container: ContainerId, execed: bool) -> u64 {
    (container.0 << 1) | u64::from(execed)
}

/// The container packed into a slot entry, or `None` for an empty slot.
fn entry_container(entry: u64) -> Option<ContainerId> {
    if entry == 0 {
        None
    } else {
        Some(ContainerId(entry >> 1))
    }
}

/// One key's lock-free slot array: the warm-path state ([Fig. 7]'s value
/// list, flattened into atomics).
///
/// Index lifecycle: `free` (unoccupied, mutated **only** under the shard
/// lock) → publish stores the packed entry + reverse-index mapping, then
/// sets exactly one of `avail`/`in_use` — the release-store that makes the
/// slot claimable. While a slot index is occupied its entry names the same
/// container; only lock-holding paths (publish, dispose) rewrite it, so
/// lock-free claimers can re-verify entries without ABA hazards.
#[derive(Debug)]
struct KeySlots {
    /// Packed `(container, execed)` per slot index; 0 = empty.
    entries: Box<[AtomicU64]>,
    /// Set = slot index unoccupied. Claimed at publish, released at dispose,
    /// both under the shard lock — `SLOTS_PER_KEY - free.count()` is the
    /// key's exact bitmap population whenever the lock is held.
    free: SlotBitmap,
    /// Set = warm container ready to claim (Existing-Available).
    avail: SlotBitmap,
    /// Set = handed out (Existing-Not-Available). The bit is the ownership
    /// token: a release must claim it, so double releases are rejected.
    in_use: SlotBitmap,
    /// Last application token executed per slot (0 = unknown/fresh); the
    /// gateway's lock-free replacement for its per-container app tracker.
    last_app: Box<[AtomicU64]>,
    /// In-use containers of this key, bitmap + overflow, including releases
    /// still in transit through their engine critical section. Decremented
    /// only once the container is available again (or disposed), so the
    /// demand watermark never under-reports a mid-release container.
    in_use_total: AtomicUsize,
    /// Peak `in_use_total` since the last demand snapshot — the
    /// `history[k][t]` series the adaptive controller feeds the predictor.
    watermark: AtomicUsize,
}

impl KeySlots {
    fn new() -> KeySlots {
        let ks = KeySlots::new_unfreed();
        for i in 0..SLOTS_PER_KEY {
            ks.free.release(i);
        }
        ks
    }

    /// Every bitmap clear, *including* `free`: no slot is claimable until
    /// the caller releases free bits. Split from [`new`](Self::new) so the
    /// model API can free a small prefix instead of all
    /// [`SLOTS_PER_KEY`] — under the checker each bit release is a schedule
    /// point paid on every re-executed schedule.
    fn new_unfreed() -> KeySlots {
        KeySlots {
            entries: (0..SLOTS_PER_KEY).map(|_| AtomicU64::new(0)).collect(),
            free: SlotBitmap::labeled(SLOTS_PER_KEY, "pool/slot-free"),
            avail: SlotBitmap::labeled(SLOTS_PER_KEY, "pool/slot-avail"),
            in_use: SlotBitmap::labeled(SLOTS_PER_KEY, "pool/slot-inuse"),
            last_app: (0..SLOTS_PER_KEY).map(|_| AtomicU64::new(0)).collect(),
            in_use_total: AtomicUsize::new(0),
            watermark: AtomicUsize::new(0),
        }
    }

    /// Occupied bitmap slots. Exact under the shard lock (see `free`).
    fn occupied(&self) -> usize {
        SLOTS_PER_KEY - self.free.count()
    }

    /// Counts an acquisition into the demand bookkeeping.
    fn note_acquire(&self) {
        let now = self.in_use_total.fetch_add(1, Ordering::Relaxed) + 1;
        self.watermark.fetch_max(now, Ordering::Relaxed);
    }

    /// Lock-free warm claim: CAS an `avail` bit, load the published entry,
    /// take the `in_use` ownership token. Returns the slot index, container,
    /// and whether it has executed before.
    fn claim_warm(&self) -> Option<(usize, ContainerId, bool)> {
        let i = self.avail.claim()?;
        // The claim's acquire CAS synchronizes with the publisher's release
        // bit-set, so the entry (stored before the bit) is fully visible.
        let entry = self.entries[i].load(Ordering::Relaxed);
        debug_assert_ne!(entry, 0, "claimed an avail bit over an empty slot");
        let fresh = self.in_use.release(i);
        debug_assert!(fresh, "slot was avail and in_use at once");
        self.note_acquire();
        Some((i, ContainerId(entry >> 1), entry & 1 == 1))
    }

    /// Lock-free release claim: verify the entry names `container`, take the
    /// `in_use` ownership token, then re-verify. Entries only change while a
    /// slot is unoccupied or under the shard lock, so a double release (bit
    /// already claimed) or a stale reverse-index mapping fails here and
    /// falls back to the locked slow path.
    fn try_claim_release(&self, i: usize, container: ContainerId) -> bool {
        if entry_container(self.entries[i].load(Ordering::Acquire)) != Some(container) {
            return false;
        }
        if !self.in_use.claim_at(i) {
            return false;
        }
        if entry_container(self.entries[i].load(Ordering::Relaxed)) != Some(container) {
            let fresh = self.in_use.release(i);
            debug_assert!(fresh, "restored claim found the in_use bit set");
            return false;
        }
        true
    }

    /// Scans the in-use bitmap for `container` and claims it. Called under
    /// the shard lock (slow-path release when the reverse index missed), but
    /// the claim itself still races lock-free releasers, so a lost CAS means
    /// the container was already released.
    fn claim_in_use_scan(&self, container: ContainerId) -> Option<usize> {
        let mut found = None;
        self.in_use.for_each_set(|i| {
            if found.is_none()
                && entry_container(self.entries[i].load(Ordering::Acquire)) == Some(container)
            {
                found = Some(i);
            }
        });
        let i = found?;
        self.in_use.claim_at(i).then_some(i)
    }

    /// Returns a claimed slot's container to the warm pool. Lock-free: the
    /// entry store (now flagged as executed) happens before the `avail`
    /// release-store, upholding publish-before-bit-set.
    fn hand_back(&self, i: usize, container: ContainerId) {
        // lint:allow(atomic-ordering, entry store is ordered by the avail.release bit-set below)
        self.entries[i].store(pack_entry(container, true), Ordering::Relaxed);
        let fresh = self.avail.release(i);
        debug_assert!(fresh, "hand-back found the avail bit already set");
        self.in_use_total.fetch_sub(1, Ordering::Relaxed);
    }

    /// Empties a slot index whose bits are already claimed by the caller.
    /// Shard lock required: this mutates `free` (occupancy).
    fn dispose_idle(&self, i: usize) {
        // lint:allow(atomic-ordering, caller owns every bit of this slot; unreachable until free.release)
        self.entries[i].store(0, Ordering::Relaxed);
        // lint:allow(atomic-ordering, same: slot unreachable until the free.release below)
        self.last_app[i].store(0, Ordering::Relaxed);
        let fresh = self.free.release(i);
        debug_assert!(fresh, "disposed slot was already free");
    }

    /// True if `container` sits available in this key's bitmap (diagnostic
    /// scan for keys outside the lock-free reverse index).
    fn avail_contains(&self, container: ContainerId) -> bool {
        let mut found = false;
        self.avail.for_each_set(|i| {
            if entry_container(self.entries[i].load(Ordering::Acquire)) == Some(container) {
                found = true;
            }
        });
        found
    }
}

/// One runtime type's containers, plus the bookkeeping the adaptive
/// controller feeds on. The warm-path state lives in the shared [`KeySlots`];
/// this struct holds the shard-locked remainder: overflow lists, controller
/// flags, and a representative configuration.
#[derive(Debug)]
struct Slot {
    /// The key's lock-free slot array, shared with the pool-level key table
    /// so warm paths reach it without this `Slot` (or its lock).
    ks: Arc<KeySlots>,
    /// Available containers beyond the bitmap capacity, FIFO. The flag
    /// records whether the container has ever executed (false for
    /// pre-warmed) so acquires report `first_exec` without an engine call.
    overflow_avail: VecDeque<(ContainerId, bool)>,
    /// In-use overflow containers, by id — membership makes a `release`
    /// legal, exactly like an `in_use` bitmap bit.
    overflow_in_use: Vec<ContainerId>,
    /// Overflow releases in transit through their engine critical section:
    /// claimed off `overflow_in_use` but not yet handed back or disposed.
    /// Keeps the live population exact for the GC decision.
    overflow_transit: usize,
    /// Whether this key is on the shard's active list (touched since the
    /// last snapshot, or still holding containers). The flag keeps the list
    /// duplicate-free without a per-touch hash probe.
    active: bool,
    /// The snapshot sequence number at which this slot went empty with zero
    /// demand, if it is currently cold; the slot is GC'd once it stays cold
    /// for the pool's GC threshold. Any touch clears it.
    cold_since: Option<u64>,
    /// A representative configuration for this key, kept so the controller
    /// can pre-warm by key alone.
    config: ContainerConfig,
}

impl Slot {
    fn new(config: ContainerConfig, ks: Arc<KeySlots>) -> Self {
        Slot {
            ks,
            overflow_avail: VecDeque::new(),
            overflow_in_use: Vec::new(),
            overflow_transit: 0,
            active: false,
            cold_since: None,
            config,
        }
    }

    /// Exact live population (bitmap + overflow, including releases in
    /// transit). Only meaningful under the shard lock.
    fn live_now(&self) -> usize {
        self.ks.occupied()
            + self.overflow_avail.len()
            + self.overflow_in_use.len()
            + self.overflow_transit
    }

    /// Available containers right now (bitmap + overflow).
    fn avail_now(&self) -> usize {
        self.ks.avail.count() + self.overflow_avail.len()
    }
}

#[derive(Debug, Default)]
struct ShardState {
    /// Keyed by interned id with [`FastMap`] — the id is an internal dense
    /// integer, so the default hasher's DoS resistance buys nothing on this
    /// per-request lookup.
    slots: FastMap<KeyId, Slot>,
    /// Keys the next control snapshot must visit: touched since the last
    /// snapshot or holding containers. Duplicate-free (see [`Slot::active`]).
    /// Lock-free warm hits never need to push here — any key with live
    /// containers is already on the list and stays on it until it drains.
    active: Vec<KeyId>,
    /// Cold slots awaiting GC, queued as `(key, went_cold_at_seq)` in
    /// nondecreasing sequence order — the dirty snapshot's "idle sweep" pops
    /// exactly the entries whose deadline arrived. Entries are lazily
    /// invalidated by re-touches (the slot's `cold_since` moves on).
    cold: VecDeque<(KeyId, u64)>,
    /// Snapshot sequence number (one per demand snapshot of this shard).
    seq: u64,
    /// Containers currently tracked by this shard (available + in use),
    /// maintained under the lock at every occupancy change so
    /// [`ShardedPool::total_live`] is O(shards). Warm hits and warm
    /// releases do not change occupancy, so they never touch it. The
    /// full-sweep snapshot cross-checks it in debug builds.
    live: usize,
}

impl ShardState {
    /// Flags `id` as touched this control interval (O(1) when already
    /// active) and cancels any pending cold-GC countdown.
    fn mark_active(&mut self, id: KeyId) {
        if let Some(slot) = self.slots.get_mut(&id) {
            slot.cold_since = None;
            if !slot.active {
                slot.active = true;
                self.active.push(id);
            }
        }
    }
}

/// One key's demand sample within a [`ShardSnapshot`]. Carries the slot's
/// live population as seen while the shard lock was already held, so the
/// controller can size the key without re-locking the shard per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyDemand {
    /// The runtime key.
    pub id: KeyId,
    /// Peak concurrent use over the interval (`history[k][t]`).
    pub demand: usize,
    /// Available containers at snapshot time.
    pub avail: usize,
    /// In-use containers at snapshot time.
    pub in_use: usize,
}

impl KeyDemand {
    /// Total live containers (available + in use) at snapshot time.
    pub fn live(&self) -> usize {
        self.avail + self.in_use
    }
}

/// One shard's demand snapshot: per-key demand for the controller, plus the
/// keys whose empty slots were garbage collected in this snapshot (the
/// controller drops their predictors).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// `history[k][t]` entries for the interval, sorted by key id.
    pub demands: Vec<KeyDemand>,
    /// Keys GC'd by this snapshot, sorted.
    pub retired: Vec<KeyId>,
}

/// An acquisition with the pool-side detail the sharded gateway needs to
/// keep the warm path off the engine lock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolAcquisition {
    /// The container to run in.
    pub container: ContainerId,
    /// Virtual time spent obtaining it.
    pub cost: SimDuration,
    /// Whether a new container had to be created.
    pub cold: bool,
    /// Whether this container has never executed before (fresh or
    /// pre-warmed) — exactly `engine.exec_count(container) == Some(0)`, but
    /// known from pool bookkeeping alone.
    pub first_exec: bool,
    /// Per-stage decomposition of a cold start (`None` on reuse).
    pub breakdown: Option<CostBreakdown>,
    /// Reconfiguration cost of a fuzzy-matched reuse (zero otherwise).
    pub reconfig: SimDuration,
    /// The bitmap slot index the container occupies, when it is tracked by
    /// the key's lock-free slot array (`None` for overflow containers). The
    /// gateway keys its lock-free last-app check on this.
    pub slot: Option<usize>,
    /// True when the acquisition completed without a single lock — a warm
    /// bitmap hit under an exact policy (fuzzy reuse checks the engine's
    /// config, locked-retry hits hold the shard lock). Callers assert a
    /// sanitizer lock depth of zero against this in debug builds.
    pub lock_free: bool,
}

impl From<PoolAcquisition> for Acquisition {
    fn from(a: PoolAcquisition) -> Acquisition {
        Acquisition {
            container: a.container,
            cost: a.cost,
            cold: a.cold,
            breakdown: a.breakdown,
            reconfig: a.reconfig,
        }
    }
}

/// A claimed bitmap slot: the caller holds the slot's ownership token (its
/// `in_use` bit is cleared) and must hand it back or dispose of it.
struct ClaimedSlot<'a> {
    id: KeyId,
    ks: &'a KeySlots,
    slot: usize,
}

/// How a slow-path release claimed its container under the shard lock.
enum SlowClaim {
    Bitmap(Arc<KeySlots>, usize),
    Overflow,
}

/// The sharded HotC container pool (Algorithms 1–2 per shard).
///
/// All methods take `&self`; warm hits are lock-free (bitmap CAS), while
/// the per-shard mutexes serialize occupancy changes of keys that hash to
/// the same shard. Engine work happens outside any shard lock via
/// [`EngineRef`].
#[derive(Debug)]
pub struct ShardedPool {
    policy: KeyPolicy,
    shards: Box<[Mutex<ShardState>]>,
    /// Interns configurations into dense [`KeyId`]s; the shard maps, the
    /// controller, and the gateway all key on the id, so the canonical key
    /// string is formatted once per distinct configuration.
    interner: KeyInterner,
    /// Lock-free key table: dense key id → that key's slot array. Entries
    /// are created once (first cold start / prewarm of the key) and persist
    /// across slot GC — their counters are provably zero while the key is
    /// untracked, and a revived key reuses the same array.
    key_slots: LazySlotTable<Arc<KeySlots>>,
    /// Lock-free reverse index: container id → packed `(key, slot)` (see
    /// [`pack_rindex`]), 0 = untracked. Written at publish and cleared at
    /// dispose, both under the owning shard's lock; read lock-free by
    /// `release`, which gets its key and slot without touching the engine
    /// or the interner.
    rindex: LazySlotTable<AtomicU64>,
    gc_intervals: u32,
    /// Bumped by every operation that may change warm availability
    /// (acquire, release, prewarm, retire, evict). External indexes over
    /// this pool's warm state — the cluster placement index — compare it to
    /// decide whether a resync is due, so an idle pool costs them one load.
    /// A bump without an actual change (e.g. a failed cold start) only
    /// causes a spurious resync, never a stale read.
    mutation_epoch: AtomicU64,
}

/// Packs a key/slot pair for the container reverse index. Both halves are
/// stored +1 so the zero word means "no mapping".
fn pack_rindex(id: KeyId, slot: usize) -> u64 {
    ((id.index() as u64 + 1) << 32) | (slot as u64 + 1)
}

impl ShardedPool {
    /// Creates a pool with [`DEFAULT_SHARDS`] shards.
    pub fn new(policy: KeyPolicy) -> Self {
        Self::with_shards(policy, DEFAULT_SHARDS)
    }

    /// Creates a pool with an explicit shard count (at least 1).
    pub fn with_shards(policy: KeyPolicy, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedPool {
            policy,
            shards: (0..shards)
                .map(|_| Mutex::labeled(ShardState::default(), "pool/shard"))
                .collect(),
            interner: KeyInterner::new(policy),
            key_slots: LazySlotTable::new(KEY_TABLE_CHUNKS, KEY_TABLE_CHUNK),
            rindex: LazySlotTable::new(RINDEX_CHUNKS, RINDEX_CHUNK),
            gc_intervals: DEFAULT_GC_INTERVALS,
            mutation_epoch: AtomicU64::new(0),
        }
    }

    /// Monotonic counter of warm-availability-affecting operations. Equal
    /// epochs guarantee warm counts have not changed since the last read;
    /// unequal epochs mean "maybe changed, rescan".
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch.load(Ordering::Relaxed)
    }

    /// Marks warm availability as possibly changed (an atomic add, not a
    /// lock — the zero-lock warm path stays zero-lock).
    fn bump_epoch(&self) {
        self.mutation_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Visits every key with at least one available (warm) container,
    /// yielding `(id, available_count)`. Takes the shard locks one at a
    /// time; O(tracked keys). Counts are per-shard-consistent snapshots —
    /// exact when the caller serializes pool mutations (the single-threaded
    /// cluster scheduler does).
    pub fn for_each_warm(&self, mut f: impl FnMut(KeyId, usize)) {
        for shard in self.shards.iter() {
            let state = shard.lock();
            for (&id, slot) in &state.slots {
                let avail = slot.avail_now();
                if avail > 0 {
                    f(id, avail);
                }
            }
        }
    }

    /// The key policy in force.
    pub fn policy(&self) -> KeyPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Consecutive zero-demand snapshots before an empty slot is GC'd.
    pub fn gc_intervals(&self) -> u32 {
        self.gc_intervals
    }

    /// Overrides the empty-slot GC threshold (setup only).
    pub fn set_gc_intervals(&mut self, intervals: u32) {
        self.gc_intervals = intervals.max(1);
    }

    /// The runtime key for a configuration under this pool's policy.
    pub fn key_of(&self, config: &ContainerConfig) -> RuntimeKey {
        RuntimeKey::from_config(config, self.policy)
    }

    /// Interns a configuration, returning its stable [`KeyId`] under this
    /// pool's policy. Steady-state calls hash only the key-relevant config
    /// fields — no string is formatted, nothing is allocated.
    pub fn intern_config(&self, config: &ContainerConfig) -> KeyId {
        self.interner.intern(config)
    }

    /// The id of an already-interned canonical key, if the pool has seen a
    /// configuration with that key.
    pub fn id_of(&self, key: &RuntimeKey) -> Option<KeyId> {
        self.interner.lookup(key)
    }

    /// The canonical key string behind an id issued by this pool.
    pub fn resolve_key(&self, id: KeyId) -> Option<RuntimeKey> {
        self.interner.resolve(id)
    }

    /// The shard a key lives on. Ids are dense, so round-robin by index
    /// gives a perfect spread without hashing.
    pub fn shard_of(&self, id: KeyId) -> usize {
        id.index() % self.shards.len()
    }

    fn shard(&self, id: KeyId) -> &Mutex<ShardState> {
        &self.shards[self.shard_of(id)]
    }

    /// The key's slot array, creating the key-table entry on first use.
    /// Keys beyond the table's capacity get a private array reachable only
    /// through their `Slot` — every touch of it holds the shard lock.
    fn slots_for(&self, id: KeyId) -> Arc<KeySlots> {
        match self
            .key_slots
            .get_or_init(id.index(), || Arc::new(KeySlots::new()))
        {
            Some(ks) => Arc::clone(ks),
            None => Arc::new(KeySlots::new()),
        }
    }

    /// Resolves a container through the lock-free reverse index. `None` for
    /// untracked containers, overflow containers, and keys beyond the
    /// lock-free key table — all of which the locked slow paths handle.
    fn rindex_lookup(&self, container: ContainerId) -> Option<ClaimedSlot<'_>> {
        let packed = self
            .rindex
            .get(container.0 as usize)?
            .load(Ordering::Acquire);
        if packed == 0 {
            return None;
        }
        let key_index = (packed >> 32) as usize - 1;
        let slot = (packed & u64::from(u32::MAX)) as usize - 1;
        let ks = &**self.key_slots.get(key_index)?;
        Some(ClaimedSlot {
            id: KeyId::from_index(key_index as u32),
            ks,
            slot,
        })
    }

    /// Publishes a container's reverse-index mapping (shard lock held).
    fn rindex_set(&self, container: ContainerId, id: KeyId, slot: usize) {
        if let Some(cell) = self
            .rindex
            .get_or_init(container.0 as usize, || AtomicU64::new(0))
        {
            cell.store(pack_rindex(id, slot), Ordering::Release);
        }
    }

    /// Clears a container's reverse-index mapping (shard lock held).
    fn rindex_clear(&self, container: ContainerId) {
        if let Some(cell) = self.rindex.get(container.0 as usize) {
            cell.store(0, Ordering::Release);
        }
    }

    /// Algorithm 1: obtain a runtime for `config`. Reuses the first
    /// available container of the same type if one exists, otherwise starts
    /// a new container — with the creation outside the shard lock, so cold
    /// starts of different types overlap.
    pub fn acquire(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        self.acquire_detailed(engine, config, now).map(Into::into)
    }

    /// [`Self::acquire`] with the extra pool-side detail ([`PoolAcquisition`])
    /// the concurrent frontend uses to avoid engine round trips.
    pub fn acquire_detailed(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<PoolAcquisition, EngineError> {
        let id = self.interner.intern(config);
        self.acquire_id(engine, id, config, now)
    }

    /// [`Self::acquire_detailed`] with a pre-interned key id: callers that
    /// serve the same function repeatedly (the sharded gateway) intern the
    /// key once at registration instead of even fingerprinting the
    /// configuration per request. `id` must be `self.intern_config(config)`.
    ///
    /// A warm hit takes **zero locks**: an `avail`-bit CAS claims the slot,
    /// the packed entry yields the container. Only a miss (no warm
    /// container) falls to the shard lock, and only a cold start touches
    /// the engine.
    pub fn acquire_id(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<PoolAcquisition, EngineError> {
        // DESIGN.md §5: warm hits are lock-free; every other transition
        // takes its locks (shard, engine) strictly one at a time. The
        // sanitizer enforces both in debug builds.
        let _scope = stdshim::request_path_scope();
        self.bump_epoch();
        if let Some(ks) = self.key_slots.get(id.index()) {
            if let Some((i, container, execed)) = ks.claim_warm() {
                let lock_free = self.policy != KeyPolicy::Fuzzy;
                let cost = self.fuzzy_reuse_cost(engine, container, config);
                // Exact keys never consult the engine on reuse, so the whole
                // warm hit must have run without a single lock.
                debug_assert!(
                    !lock_free || _scope.locks_taken() == 0,
                    "warm hit took a lock"
                );
                return Ok(PoolAcquisition {
                    container,
                    cost,
                    cold: false,
                    first_exec: !execed,
                    breakdown: None,
                    reconfig: cost,
                    slot: Some(i),
                    lock_free,
                });
            }
        }
        // The id↔config contract is verified off the lock-free path only:
        // the check interns, and the interner's read lock would break the
        // warm hit's zero-lock guarantee in debug builds.
        debug_assert_eq!(id, self.intern_config(config));
        let shard = self.shard(id);
        let warm = {
            let mut guard = shard.lock();
            guard.slots.get_mut(&id).and_then(|slot| {
                // Retry the bitmap under the lock — a racing release may
                // have refilled it after the lock-free claim missed — then
                // fall back to the overflow list.
                if let Some((i, container, execed)) = slot.ks.claim_warm() {
                    return Some((Some(i), container, execed));
                }
                let (container, execed) = slot.overflow_avail.pop_front()?;
                slot.ks.note_acquire();
                slot.overflow_in_use.push(container);
                Some((None, container, execed))
            })
        };
        if let Some((slot_idx, container, execed)) = warm {
            let cost = self.fuzzy_reuse_cost(engine, container, config);
            return Ok(PoolAcquisition {
                container,
                cost,
                cold: false,
                first_exec: !execed,
                breakdown: None,
                reconfig: cost,
                slot: slot_idx,
                lock_free: false,
            });
        }
        // Not existing, or existing but not available: start a new one. The
        // slot is recorded only once the container exists, so a failed
        // create leaves no phantom slot behind for the controller to track.
        let (container, breakdown) =
            engine.with_engine(|e| e.create_container(config.clone(), now))?;
        let slot_idx = {
            let mut guard = shard.lock();
            let slot = guard
                .slots
                .entry(id)
                .or_insert_with(|| Slot::new(config.clone(), self.slots_for(id)));
            let slot_idx = self.publish_in_use(slot, id, container);
            guard.live += 1;
            guard.mark_active(id);
            slot_idx
        };
        Ok(PoolAcquisition {
            container,
            cost: breakdown.total(),
            cold: true,
            first_exec: true,
            breakdown: Some(breakdown),
            reconfig: SimDuration::ZERO,
            slot: slot_idx,
            lock_free: false,
        })
    }

    /// Reconfiguration cost of reusing `container` for `config` — zero for
    /// exact keys (every key-relevant field is pinned), an engine config
    /// check for fuzzy keys.
    fn fuzzy_reuse_cost(
        &self,
        engine: &impl EngineRef,
        container: ContainerId,
        config: &ContainerConfig,
    ) -> SimDuration {
        if self.policy != KeyPolicy::Fuzzy {
            return SimDuration::ZERO;
        }
        engine.with_engine(|e| match e.config(container) {
            Some(existing) if needs_reconfig(existing, config) => FUZZY_RECONFIG_COST,
            _ => SimDuration::ZERO,
        })
    }

    /// Publishes a just-created container straight into the in-use state
    /// (cold-start acquire). Shard lock held; the entry and reverse-index
    /// stores precede the `in_use` bit-set.
    fn publish_in_use(&self, slot: &mut Slot, id: KeyId, container: ContainerId) -> Option<usize> {
        let ks = &slot.ks;
        if let Some(i) = ks.free.claim() {
            // lint:allow(atomic-ordering, entry store is ordered by the in_use.release bit-set below)
            ks.entries[i].store(pack_entry(container, false), Ordering::Relaxed);
            // lint:allow(atomic-ordering, advisory recency token; ordered by the bit-set below)
            ks.last_app[i].store(0, Ordering::Relaxed);
            self.rindex_set(container, id, i);
            let fresh = ks.in_use.release(i);
            debug_assert!(fresh, "published slot's in_use bit was already set");
            ks.note_acquire();
            Some(i)
        } else {
            ks.note_acquire();
            slot.overflow_in_use.push(container);
            None
        }
    }

    /// Publishes a just-created container into the available state
    /// (prewarm). Shard lock held; publish-before-bit-set as above.
    fn publish_avail(&self, slot: &mut Slot, id: KeyId, container: ContainerId, execed: bool) {
        let ks = &slot.ks;
        if let Some(i) = ks.free.claim() {
            // lint:allow(atomic-ordering, entry store is ordered by the avail.release bit-set below)
            ks.entries[i].store(pack_entry(container, execed), Ordering::Relaxed);
            // lint:allow(atomic-ordering, advisory recency token; ordered by the bit-set below)
            ks.last_app[i].store(0, Ordering::Relaxed);
            self.rindex_set(container, id, i);
            let fresh = ks.avail.release(i);
            debug_assert!(fresh, "published slot's avail bit was already set");
        } else {
            slot.overflow_avail.push_back((container, execed));
        }
    }

    /// Algorithm 2: clean the used container and add it back to the pool.
    /// A crashed (Stopped) container cannot be reused: it is disposed of
    /// instead. Releasing a container that was never acquired from this pool
    /// — or releasing the same container twice — is an
    /// [`EngineError::InvalidState`]: the duplicate must not be pooled, or
    /// one container could serve two requests at once.
    ///
    /// The warm path takes **zero pool locks**: the reverse index resolves
    /// the container to its key and slot, the `in_use` bit-claim proves
    /// ownership, and the hand-back is an entry store plus an `avail`
    /// release-store. Only crashed containers, overflow containers, and
    /// reverse-index misses fall to the shard lock.
    pub fn release(
        &self,
        engine: &impl EngineRef,
        container: ContainerId,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        // DESIGN.md §5: engine and shard locks are taken one at a time.
        let _scope = stdshim::request_path_scope();
        self.bump_epoch();
        if let Some(claim) = self.rindex_lookup(container) {
            if claim.ks.try_claim_release(claim.slot, container) {
                return self.finish_claimed_release(engine, claim, container, now, None);
            }
        }
        self.release_slow(engine, container, now)
    }

    /// Ends a claimed bitmap container's pool tenure: one engine critical
    /// section (optionally ending the execution first), then hand-back
    /// (lock-free) or disposal (shard lock). The caller holds the slot's
    /// ownership token; an engine rejection restores it.
    fn finish_claimed_release(
        &self,
        engine: &impl EngineRef,
        claim: ClaimedSlot<'_>,
        container: ContainerId,
        now: SimTime,
        end_exec_then_crashed: Option<bool>,
    ) -> Result<SimDuration, EngineError> {
        let outcome = engine.with_engine(|e| {
            let crashed = match end_exec_then_crashed {
                Some(crashed) => {
                    e.end_exec(container, now)?;
                    crashed
                }
                None => e.state(container) == containersim::ContainerState::Stopped,
            };
            let cost = if crashed {
                e.stop_and_remove(container, now)
            } else {
                e.cleanup(container, now)
            }?;
            Ok::<_, EngineError>((cost, crashed))
        });
        match outcome {
            Ok((cost, crashed)) => {
                if crashed {
                    self.dispose_claimed(claim, container);
                } else {
                    claim.ks.hand_back(claim.slot, container);
                }
                Ok(cost)
            }
            Err(err) => {
                // The engine rejected the hand-back (e.g. released while
                // still Running): return the ownership token so bookkeeping
                // stays honest. The key still holds the container, so it is
                // necessarily on the active list already.
                let fresh = claim.ks.in_use.release(claim.slot);
                debug_assert!(fresh, "restored claim found the in_use bit set");
                Err(err)
            }
        }
    }

    /// Disposes of a claimed bitmap container (crashed release, or evicted
    /// under the lock). Takes the shard lock: occupancy changes here.
    fn dispose_claimed(&self, claim: ClaimedSlot<'_>, container: ContainerId) {
        let mut guard = self.shard(claim.id).lock();
        debug_assert!(
            guard.slots.contains_key(&claim.id),
            "claimed container's key has no slot"
        );
        if guard.slots.contains_key(&claim.id) {
            claim.ks.dispose_idle(claim.slot);
            claim.ks.in_use_total.fetch_sub(1, Ordering::Relaxed);
            self.rindex_clear(container);
            guard.live -= 1;
        }
        // A disposal is a touch: the controller must re-examine this key.
        guard.mark_active(claim.id);
    }

    /// The locked release path: overflow containers, reverse-index misses
    /// (keys beyond the lock-free table), and failed fast-path claims
    /// (double releases, which must error here).
    fn release_slow(
        &self,
        engine: &impl EngineRef,
        container: ContainerId,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let (config, state_now, crashed) = engine.with_engine(|e| {
            let config = e
                .config(container)
                .cloned()
                .ok_or(EngineError::UnknownContainer(container))?;
            let state = e.state(container);
            Ok::<_, EngineError>((
                config,
                state,
                state == containersim::ContainerState::Stopped,
            ))
        })?;
        // The container came from an acquire, so its config is already
        // interned — this is the fingerprint fast path, no string work.
        let id = self.interner.intern(&config);
        let claimed = self.claim_slow(id, container);
        let Some(claimed) = claimed else {
            return Err(EngineError::InvalidState {
                id: container,
                state: state_now,
                needed: "a container acquired from this pool",
            });
        };
        match claimed {
            SlowClaim::Bitmap(ks, slot) => self.finish_claimed_release(
                engine,
                ClaimedSlot { id, ks: &ks, slot },
                container,
                now,
                None,
            ),
            SlowClaim::Overflow => {
                let result = engine.with_engine(|e| {
                    if crashed {
                        e.stop_and_remove(container, now)
                    } else {
                        e.cleanup(container, now)
                    }
                });
                self.settle_overflow(id, container, crashed, result)
            }
        }
    }

    /// Claims `container` from `id`'s in-use bookkeeping under the shard
    /// lock: the overflow list first, then the in-use bitmap (keys beyond
    /// the reverse index). `None` means the pool never handed it out — or
    /// it was already released.
    fn claim_slow(&self, id: KeyId, container: ContainerId) -> Option<SlowClaim> {
        let mut guard = self.shard(id).lock();
        guard.slots.get_mut(&id).and_then(|slot| {
            if let Some(at) = slot.overflow_in_use.iter().position(|&c| c == container) {
                slot.overflow_in_use.swap_remove(at);
                slot.overflow_transit += 1;
                Some(SlowClaim::Overflow)
            } else {
                slot.ks
                    .claim_in_use_scan(container)
                    .map(|i| SlowClaim::Bitmap(Arc::clone(&slot.ks), i))
            }
        })
    }

    /// Settles an overflow release after its engine critical section:
    /// hand back, dispose, or restore on engine rejection.
    fn settle_overflow(
        &self,
        id: KeyId,
        container: ContainerId,
        crashed: bool,
        result: Result<SimDuration, EngineError>,
    ) -> Result<SimDuration, EngineError> {
        let mut guard = self.shard(id).lock();
        if let Some(slot) = guard.slots.get_mut(&id) {
            slot.overflow_transit -= 1;
            match &result {
                Ok(_) if !crashed => {
                    slot.overflow_avail.push_back((container, true));
                    slot.ks.in_use_total.fetch_sub(1, Ordering::Relaxed);
                }
                Ok(_) => {
                    slot.ks.in_use_total.fetch_sub(1, Ordering::Relaxed);
                    guard.live -= 1;
                }
                Err(_) => {
                    // The engine rejected the hand-back; restore the claim
                    // so bookkeeping stays honest.
                    slot.overflow_in_use.push(container);
                }
            }
        }
        // A release (even of a crashed container) is a touch: the
        // controller must see this key's interval even if demand fell
        // to zero, so retire/GC decisions keep firing.
        guard.mark_active(id);
        result
    }

    /// The concurrent frontend's combined end-of-request path: claims the
    /// container, then ends the execution and cleans (or, if `crashed`,
    /// disposes of) the container in a **single** engine critical section.
    /// Bitmap containers resolve lock-free through the reverse index — which
    /// also knows the container's *true* key when the function was
    /// re-registered with a different configuration mid-flight. Returns
    /// `Ok(None)` without touching the engine when the container is unknown
    /// to both the reverse index and `id`'s locked bookkeeping, so the
    /// caller can fall back to the engine-derived [`Self::release`].
    pub fn try_finish_release(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        container: ContainerId,
        now: SimTime,
        crashed: bool,
    ) -> Result<Option<SimDuration>, EngineError> {
        // DESIGN.md §5: claim, engine critical section, and hand-back are
        // disjoint regions — lock-free, engine-locked, lock-free (or shard-
        // locked on disposal) — never nested.
        let _scope = stdshim::request_path_scope();
        self.bump_epoch();
        if let Some(claim) = self.rindex_lookup(container) {
            if claim.ks.try_claim_release(claim.slot, container) {
                return self
                    .finish_claimed_release(engine, claim, container, now, Some(crashed))
                    .map(Some);
            }
        }
        let Some(claimed) = self.claim_slow(id, container) else {
            return Ok(None);
        };
        match claimed {
            SlowClaim::Bitmap(ks, slot) => self
                .finish_claimed_release(
                    engine,
                    ClaimedSlot { id, ks: &ks, slot },
                    container,
                    now,
                    Some(crashed),
                )
                .map(Some),
            SlowClaim::Overflow => {
                let result = engine.with_engine(|e| {
                    e.end_exec(container, now)?;
                    if crashed {
                        e.stop_and_remove(container, now)
                    } else {
                        e.cleanup(container, now)
                    }
                });
                self.settle_overflow(id, container, crashed, result)
                    .map(Some)
            }
        }
    }

    /// Records the application token last executed in a bitmap slot,
    /// returning the previous token (0 = fresh or unknown). The caller must
    /// own the slot via a live acquisition. `None` when the key is beyond
    /// the lock-free table — the gateway falls back to its hash tracker.
    pub fn note_app(&self, id: KeyId, slot: usize, token: u64) -> Option<u64> {
        if slot >= SLOTS_PER_KEY {
            return None;
        }
        let ks = self.key_slots.get(id.index())?;
        // lint:allow(atomic-ordering, advisory recency token; readers tolerate staleness)
        Some(ks.last_app[slot].swap(token, Ordering::Relaxed))
    }

    /// Pre-warms one container of the given configuration (adaptive
    /// controller's scale-up action). The container boots straight into the
    /// Existing-Available state. Returns the cold-start cost (background).
    pub fn prewarm(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let id = self.interner.intern(config);
        self.bump_epoch();
        let (container, breakdown) =
            engine.with_engine(|e| e.create_container(config.clone(), now))?;
        let mut guard = self.shard(id).lock();
        let slot = guard
            .slots
            .entry(id)
            .or_insert_with(|| Slot::new(config.clone(), self.slots_for(id)));
        self.publish_avail(slot, id, container, false);
        guard.live += 1;
        guard.mark_active(id);
        Ok(breakdown.total())
    }

    /// Pre-warms one container for a key the pool already tracks, using the
    /// slot's representative configuration. Returns `Ok(None)` if the key is
    /// unknown (e.g. its slot was GC'd since the snapshot).
    pub fn prewarm_key_id(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let config = self
            .shard(id)
            .lock()
            .slots
            .get(&id)
            .map(|s| s.config.clone());
        match config {
            Some(config) => self.prewarm(engine, &config, now).map(Some),
            None => Ok(None),
        }
    }

    /// [`Self::prewarm_key_id`] by canonical key (compatibility path).
    pub fn prewarm_key(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        match self.id_of(key) {
            Some(id) => self.prewarm_key_id(engine, id, now),
            None => Ok(None),
        }
    }

    /// Retires one available container of the given type (adaptive
    /// controller's scale-down action). Returns the teardown cost, or `None`
    /// if none was available.
    pub fn retire_one_id(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        self.bump_epoch();
        let popped = {
            let mut guard = self.shard(id).lock();
            let popped = guard.slots.get_mut(&id).and_then(|slot| {
                // The avail-bit claim is atomic against racing lock-free
                // acquires: whoever wins the CAS owns the slot.
                if let Some(i) = slot.ks.avail.claim() {
                    let container = entry_container(slot.ks.entries[i].load(Ordering::Relaxed));
                    debug_assert!(container.is_some(), "avail bit over an empty slot");
                    slot.ks.dispose_idle(i);
                    container
                } else {
                    slot.overflow_avail.pop_front().map(|(c, _)| c)
                }
            });
            if let Some(container) = popped {
                self.rindex_clear(container);
                guard.live -= 1;
                guard.mark_active(id);
            }
            popped
        };
        match popped {
            Some(container) => engine
                .with_engine(|e| e.stop_and_remove(container, now))
                .map(Some),
            None => Ok(None),
        }
    }

    /// [`Self::retire_one_id`] by canonical key (compatibility path).
    pub fn retire_one(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        match self.id_of(key) {
            Some(id) => self.retire_one_id(engine, id, now),
            None => Ok(None),
        }
    }

    /// Forcibly terminates the *oldest* available live container across all
    /// types (§IV-B's response to too many containers / memory pressure).
    ///
    /// Two-phase: (1) scan shard by shard (one lock at a time) collecting
    /// available candidates, pick the globally oldest via the engine;
    /// (2) re-lock the owning shard, re-verify the slot entry still names
    /// the candidate, and claim its `avail` bit — if a racing acquire took
    /// it in between, rescan. Returns the teardown cost, or `None` if the
    /// pool holds no available container.
    pub fn evict_oldest(
        &self,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        self.bump_epoch();
        // Bounded retries: each retry means a racing acquire claimed our
        // candidate, which is progress for the system as a whole.
        for _ in 0..8 {
            let mut candidates: Vec<(KeyId, ContainerId, Option<usize>)> = Vec::new();
            for shard in self.shards.iter() {
                let state = shard.lock();
                for (&key, slot) in &state.slots {
                    slot.ks.avail.for_each_set(|i| {
                        if let Some(c) = entry_container(slot.ks.entries[i].load(Ordering::Relaxed))
                        {
                            candidates.push((key, c, Some(i)));
                        }
                    });
                    for &(c, _) in &slot.overflow_avail {
                        candidates.push((key, c, None));
                    }
                }
            }
            if candidates.is_empty() {
                return Ok(None);
            }
            // Oldest first, ids as a deterministic tie-break. A candidate
            // retired by a racing thread simply drops out (no created_at).
            let oldest = engine.with_engine(|e| {
                candidates
                    .into_iter()
                    .filter_map(|(key, c, at)| e.created_at(c).map(|t| (t, c, key, at)))
                    .min_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
            });
            let Some((_, container, key, at)) = oldest else {
                continue;
            };
            let claimed = {
                let mut guard = self.shard(key).lock();
                let claimed = guard.slots.get_mut(&key).is_some_and(|slot| match at {
                    Some(i) => {
                        // Entries are frozen while occupied, so candidate
                        // still present ⇔ entry still names it; the bit
                        // claim then races only lock-free acquirers.
                        let entry = slot.ks.entries[i].load(Ordering::Relaxed);
                        if entry_container(entry) == Some(container) && slot.ks.avail.claim_at(i) {
                            slot.ks.dispose_idle(i);
                            self.rindex_clear(container);
                            true
                        } else {
                            false
                        }
                    }
                    None => {
                        let before = slot.overflow_avail.len();
                        slot.overflow_avail.retain(|&(c, _)| c != container);
                        slot.overflow_avail.len() != before
                    }
                });
                if claimed {
                    guard.live -= 1;
                    // An eviction is a touch: the controller must re-examine
                    // this key at the next interval.
                    guard.mark_active(key);
                }
                claimed
            };
            if claimed {
                return engine
                    .with_engine(|e| e.stop_and_remove(container, now))
                    .map(Some);
            }
        }
        Ok(None)
    }

    /// `num_avail[key]`: available containers of the given type.
    pub fn num_avail_id(&self, id: KeyId) -> usize {
        self.shard(id)
            .lock()
            .slots
            .get(&id)
            .map_or(0, Slot::avail_now)
    }

    /// In-use containers of the given type (including releases in transit
    /// through their engine critical section).
    pub fn num_in_use_id(&self, id: KeyId) -> usize {
        self.shard(id)
            .lock()
            .slots
            .get(&id)
            .map_or(0, |s| s.ks.in_use_total.load(Ordering::Relaxed))
    }

    /// `(available, in_use)` for a key id in one lock acquisition — the
    /// controller's per-key sizing read.
    pub fn live_of_id(&self, id: KeyId) -> (usize, usize) {
        self.shard(id).lock().slots.get(&id).map_or((0, 0), |s| {
            (s.avail_now(), s.ks.in_use_total.load(Ordering::Relaxed))
        })
    }

    /// [`Self::num_avail_id`] by canonical key (compatibility path).
    pub fn num_avail(&self, key: &RuntimeKey) -> usize {
        self.id_of(key).map_or(0, |id| self.num_avail_id(id))
    }

    /// [`Self::num_in_use_id`] by canonical key (compatibility path).
    pub fn num_in_use(&self, key: &RuntimeKey) -> usize {
        self.id_of(key).map_or(0, |id| self.num_in_use_id(id))
    }

    /// Total live containers tracked by the pool (available + in use).
    /// Reads the per-shard counters — O(shards), not O(tracked keys), so
    /// the limit check the controller runs every tick stays independent of
    /// fleet size.
    pub fn total_live(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().live).sum()
    }

    /// Per-shard `(available, in_use)` container counts, indexed by shard —
    /// the telemetry layer exports these as per-shard pool-size gauges.
    pub fn shard_sizes(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state.slots.values().fold((0, 0), |(a, u), s| {
                    (
                        a + s.avail_now(),
                        u + s.ks.in_use_total.load(Ordering::Relaxed),
                    )
                })
            })
            .collect()
    }

    /// Total available containers across all types.
    pub fn total_available(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state.slots.values().map(Slot::avail_now).sum::<usize>()
            })
            .sum()
    }

    /// The Fig. 7 pool-view code for a container: 1 Existing-Available, 0
    /// Existing-Not-Available, -1 Not-Existing.
    pub fn pool_code(&self, engine: &ContainerEngine, container: ContainerId) -> i8 {
        // Reverse-index hit: the avail bit answers directly.
        let pooled = match self.rindex_lookup(container) {
            Some(claim) => claim.ks.avail.is_set(claim.slot),
            // Otherwise: overflow containers and beyond-table keys, scanned
            // under the shard locks (diagnostic path only).
            None => self.shards.iter().any(|shard| {
                shard.lock().slots.values().any(|s| {
                    s.overflow_avail.iter().any(|&(c, _)| c == container)
                        || s.ks.avail_contains(container)
                })
            }),
        };
        if pooled {
            1
        } else if engine.config(container).is_some() {
            0
        } else {
            -1
        }
    }

    /// Takes one shard's **full-sweep** demand snapshot (`history[k][t]`):
    /// visits every slot, resets watermarks for the next control interval,
    /// and garbage-collects slots that have been empty for
    /// [`Self::gc_intervals`] consecutive zero-demand snapshots. Keys with
    /// live containers are always reported, including zero-demand intervals.
    ///
    /// GC fires only when the key's live population — bitmap occupancy plus
    /// overflow lists plus releases in transit, all exact under the shard
    /// lock — is zero, so a warm operation caught between its CAS and its
    /// bookkeeping can never have its container stranded by a GC.
    ///
    /// This is the O(tracked keys) reference path; the controller's default
    /// is [`Self::take_shard_snapshot_dirty`], which visits only the active
    /// list and produces the same GC timing (asserted by a property test in
    /// `controller.rs`).
    pub fn take_shard_snapshot(&self, shard: usize) -> ShardSnapshot {
        let mut demands = Vec::new();
        let mut retired = Vec::new();
        let gc_after = u64::from(self.gc_intervals);
        {
            let mut guard = self.shards[shard].lock();
            guard.seq += 1;
            let seq = guard.seq;
            let ShardState {
                slots,
                active,
                cold,
                live,
                ..
            } = &mut *guard;
            slots.retain(|&id, slot| {
                let in_use = slot.ks.in_use_total.load(Ordering::Relaxed);
                let avail = slot.avail_now();
                let demand = slot
                    .ks
                    .watermark
                    // lint:allow(atomic-ordering, watermark is an advisory peak counter reset under the shard lock)
                    .swap(in_use, Ordering::Relaxed)
                    .max(in_use);
                if demand == 0 && slot.live_now() == 0 {
                    let since = match slot.cold_since {
                        Some(since) => since,
                        None => {
                            // First zero-demand interval: leave the active
                            // list and start the GC countdown.
                            slot.cold_since = Some(seq);
                            slot.active = false;
                            queue_cold(cold, id, seq, gc_after);
                            seq
                        }
                    };
                    if seq - since + 1 >= gc_after {
                        retired.push(id);
                        return false;
                    }
                } else {
                    slot.cold_since = None;
                    if !slot.active {
                        slot.active = true;
                        active.push(id);
                    }
                }
                demands.push(KeyDemand {
                    id,
                    demand,
                    avail,
                    in_use,
                });
                true
            });
            // The full sweep visits every slot anyway: cross-check the
            // shard's live counter against the ground truth it summarises.
            debug_assert_eq!(
                *live,
                slots.values().map(Slot::live_now).sum::<usize>(),
                "shard live counter diverged from slot contents"
            );
            // Heal the active list: GC'd and newly-cold keys drop out.
            active.retain(|id| slots.get(id).is_some_and(|s| s.active));
            // The retain above already GC'd everything due, so this only
            // discards stale queue entries; it keeps the queue bounded when
            // full sweeps and dirty snapshots interleave.
            drain_due_cold(slots, cold, &mut retired, seq, gc_after);
        }
        demands.sort_unstable_by_key(|d| d.id);
        retired.sort_unstable();
        ShardSnapshot { demands, retired }
    }

    /// Takes one shard's **dirty-set** demand snapshot: visits only the keys
    /// touched since the last snapshot or still holding containers, plus the
    /// cold queue's due GC deadlines (the "idle sweep" that guarantees
    /// zero-demand GC fires within [`Self::gc_intervals`] snapshots of a key
    /// going cold — identical timing to the full sweep).
    ///
    /// Work is O(active keys + due GCs), independent of how many keys the
    /// shard tracks. Cold keys are reported once (their final zero-demand
    /// interval) and then skipped until GC'd or re-touched; the controller
    /// backfills the skipped zero observations from the snapshot sequence
    /// gap, so predictor state matches the full sweep exactly. Lock-free
    /// warm hits keep the dirty set honest for free: a key serving warm
    /// traffic holds containers, and any key holding containers is already
    /// on the active list.
    pub fn take_shard_snapshot_dirty(&self, shard: usize) -> ShardSnapshot {
        let mut demands = Vec::new();
        let mut retired = Vec::new();
        let gc_after = u64::from(self.gc_intervals);
        {
            let mut guard = self.shards[shard].lock();
            guard.seq += 1;
            let seq = guard.seq;
            let ShardState {
                slots,
                active,
                cold,
                ..
            } = &mut *guard;
            for id in std::mem::take(active) {
                let Some(slot) = slots.get_mut(&id) else {
                    continue;
                };
                let in_use = slot.ks.in_use_total.load(Ordering::Relaxed);
                let avail = slot.avail_now();
                let demand = slot
                    .ks
                    .watermark
                    // lint:allow(atomic-ordering, watermark is an advisory peak counter reset under the shard lock)
                    .swap(in_use, Ordering::Relaxed)
                    .max(in_use);
                if demand == 0 && slot.live_now() == 0 {
                    // Final zero-demand report; the slot then waits on the
                    // cold queue for GC (or a re-touch).
                    slot.active = false;
                    slot.cold_since = Some(seq);
                    if gc_after <= 1 {
                        // The full sweep GCs a just-cold slot in this same
                        // snapshot without reporting it; match that.
                        slots.remove(&id);
                        retired.push(id);
                        continue;
                    }
                    cold.push_back((id, seq));
                } else {
                    // Keys holding containers stay on the active list: the
                    // controller sizes them every interval, exactly like
                    // the full sweep.
                    slot.active = true;
                    active.push(id);
                }
                demands.push(KeyDemand {
                    id,
                    demand,
                    avail,
                    in_use,
                });
            }
            drain_due_cold(slots, cold, &mut retired, seq, gc_after);
        }
        demands.sort_unstable_by_key(|d| d.id);
        retired.sort_unstable();
        ShardSnapshot { demands, retired }
    }

    /// Takes the demand snapshot across every shard (full sweep, GC
    /// included), merged and sorted — the single-threaded controller path.
    pub fn take_demand_snapshot(&self) -> Vec<(RuntimeKey, usize)> {
        let mut ids = Vec::new();
        for shard in 0..self.num_shards() {
            ids.extend(self.take_shard_snapshot(shard).demands);
        }
        let mut out: Vec<(RuntimeKey, usize)> = ids
            .into_iter()
            .filter_map(|d| Some((self.resolve_key(d.id)?, d.demand)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The keys the pool currently tracks, sorted.
    pub fn keys(&self) -> Vec<RuntimeKey> {
        let ids: Vec<KeyId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().slots.keys().copied().collect::<Vec<_>>())
            .collect();
        let mut keys: Vec<RuntimeKey> = ids
            .into_iter()
            .filter_map(|id| self.resolve_key(id))
            .collect();
        keys.sort();
        keys
    }
}

/// Queues a newly-cold key for the idle sweep, unless it is due immediately
/// (the caller GCs it in the same snapshot).
fn queue_cold(cold: &mut VecDeque<(KeyId, u64)>, id: KeyId, seq: u64, gc_after: u64) {
    if gc_after > 1 {
        cold.push_back((id, seq));
    }
}

/// Pops every cold-queue entry whose GC deadline arrived at `seq` and
/// retires the slots that are still cold since then. Entries invalidated by
/// a re-touch (the slot's `cold_since` moved or cleared) or by an earlier GC
/// are discarded. The queue is in nondecreasing `since` order, so this stops
/// at the first not-yet-due entry.
fn drain_due_cold(
    slots: &mut FastMap<KeyId, Slot>,
    cold: &mut VecDeque<(KeyId, u64)>,
    retired: &mut Vec<KeyId>,
    seq: u64,
    gc_after: u64,
) {
    while let Some(&(id, since)) = cold.front() {
        if seq.saturating_sub(since) + 1 < gc_after {
            break;
        }
        cold.pop_front();
        if slots.get(&id).is_some_and(|s| s.cold_since == Some(since)) {
            slots.remove(&id);
            retired.push(id);
        }
    }
}

/// Model-checker surface over the private [`KeySlots`] protocol, compiled
/// only under `--cfg hotc_model` (the instrumented build `hotc-model`'s
/// protocol suite runs against; see DESIGN.md §7.3).
///
/// The lock-free operations (`claim_warm`, `hand_back`,
/// `try_claim_release`) call the real `KeySlots` methods unmodified. The
/// lock-holding operations (`publish_avail`, `retire_avail`, `evict_at`)
/// replay the exact store sequences of [`ShardedPool::publish_avail`],
/// [`ShardedPool::retire_one_id`], and [`ShardedPool::evict_oldest`]'s
/// claim phase, minus the shard lock and reverse index — in the model the
/// lock's happens-before hand-off is reproduced by running every
/// lock-holding op either before spawning the racers (spawn copies the
/// parent's vector clock) or as the only lock-holder in the schedule, which
/// is precisely the mutual exclusion the real lock provides.
#[cfg(hotc_model)]
pub mod model_api {
    use super::{entry_container, pack_entry, KeySlots, Ordering, SLOTS_PER_KEY};
    use containersim::ContainerId;

    /// One key's slot-array protocol surface for model tests.
    #[derive(Debug)]
    pub struct ModelSlots {
        ks: KeySlots,
    }

    impl ModelSlots {
        /// A fresh slot group with only the first `prefree` free-bitmap
        /// slots released. The real constructor frees all
        /// [`SLOTS_PER_KEY`]; model tests keep `prefree` small so each
        /// re-executed schedule pays a handful of setup ops instead of 128.
        pub fn new(prefree: usize) -> ModelSlots {
            assert!(prefree <= SLOTS_PER_KEY);
            let ks = KeySlots::new_unfreed();
            for i in 0..prefree {
                ks.free.release(i);
            }
            ModelSlots { ks }
        }

        /// Real lock-free warm claim ([`KeySlots::claim_warm`]).
        pub fn claim_warm(&self) -> Option<(usize, ContainerId, bool)> {
            self.ks.claim_warm()
        }

        /// Real lock-free hand-back ([`KeySlots::hand_back`]).
        pub fn hand_back(&self, i: usize, container: ContainerId) {
            self.ks.hand_back(i, container);
        }

        /// Real lock-free release claim ([`KeySlots::try_claim_release`]).
        pub fn try_claim_release(&self, i: usize, container: ContainerId) -> bool {
            self.ks.try_claim_release(i, container)
        }

        /// The store sequence of [`super::ShardedPool::publish_avail`]'s
        /// bitmap arm: free-claim, entry store, last-app store, then the
        /// `avail` release bit-set (publish-before-bit-set).
        pub fn publish_avail(&self, container: ContainerId, execed: bool) -> Option<usize> {
            let i = self.ks.free.claim()?;
            // lint:allow(atomic-ordering, entry store is ordered by the avail.release bit-set below)
            self.ks.entries[i].store(pack_entry(container, execed), Ordering::Relaxed);
            // lint:allow(atomic-ordering, advisory recency token; ordered by the bit-set below)
            self.ks.last_app[i].store(0, Ordering::Relaxed);
            let fresh = self.ks.avail.release(i);
            debug_assert!(fresh, "published slot's avail bit was already set");
            Some(i)
        }

        /// [`Self::publish_avail`] with the final bit-set deliberately
        /// weakened to `Relaxed` — the mutation the harness must catch
        /// (`hotc-model/tests/mutation.rs`). Never a production sequence.
        pub fn publish_avail_weak(&self, container: ContainerId, execed: bool) -> Option<usize> {
            let i = self.ks.free.claim()?;
            // lint:allow(atomic-ordering, deliberately weak publish; the mutation harness must catch it)
            self.ks.entries[i].store(pack_entry(container, execed), Ordering::Relaxed);
            // lint:allow(atomic-ordering, advisory recency token only)
            self.ks.last_app[i].store(0, Ordering::Relaxed);
            let fresh = self.ks.avail.release_relaxed(i);
            debug_assert!(fresh, "published slot's avail bit was already set");
            Some(i)
        }

        /// The slot-array arm of [`super::ShardedPool::retire_one_id`]:
        /// claim any `avail` bit (atomic against racing lock-free
        /// acquires), read the entry, dispose the slot.
        pub fn retire_avail(&self) -> Option<ContainerId> {
            let i = self.ks.avail.claim()?;
            let container = entry_container(self.ks.entries[i].load(Ordering::Relaxed));
            debug_assert!(container.is_some(), "avail bit over an empty slot");
            self.ks.dispose_idle(i);
            container
        }

        /// The claim phase of [`super::ShardedPool::evict_oldest`]: re-verify
        /// the entry still names `container`, then take its `avail` bit;
        /// a racing acquire winning the bit fails the eviction.
        pub fn evict_at(&self, i: usize, container: ContainerId) -> bool {
            let entry = self.ks.entries[i].load(Ordering::Relaxed);
            if entry_container(entry) == Some(container) && self.ks.avail.claim_at(i) {
                self.ks.dispose_idle(i);
                true
            } else {
                false
            }
        }

        /// Advisory `avail` population ([`super::SlotBitmap::count`]).
        pub fn avail_count(&self) -> usize {
            self.ks.avail.count()
        }

        /// Advisory `in_use` population.
        pub fn in_use_count(&self) -> usize {
            self.ks.in_use.count()
        }

        /// Advisory free population.
        pub fn free_count(&self) -> usize {
            self.ks.free.count()
        }

        /// Whether `container` sits available ([`KeySlots::avail_contains`]).
        pub fn avail_contains(&self, container: ContainerId) -> bool {
            self.ks.avail_contains(container)
        }

        /// The key's in-use demand counter.
        pub fn in_use_total(&self) -> usize {
            self.ks.in_use_total.load(Ordering::Relaxed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::engine::ExecWork;
    use containersim::{HardwareProfile, ImageId};

    fn engine() -> Mutex<ContainerEngine> {
        Mutex::labeled(
            ContainerEngine::with_local_images(HardwareProfile::server()),
            "core/engine",
        )
    }

    fn cfg(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        for image in ["alpine:3.12", "python:3.8-alpine", "golang:1.13"] {
            let id = pool.intern_config(&cfg(image));
            let s = pool.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, pool.shard_of(id), "placement must be stable");
            assert_eq!(id, pool.intern_config(&cfg(image)), "ids must be stable");
        }
    }

    #[test]
    fn acquire_release_round_trip_through_shards() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        let c = cfg("alpine:3.12");
        let a = pool.acquire(&e, &c, SimTime::ZERO).unwrap();
        assert!(a.cold);
        e.with_engine(|e| {
            let out = e
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(1)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(a.container, SimTime::ZERO + out.latency)
                .unwrap();
        });
        pool.release(&e, a.container, SimTime::from_secs(1))
            .unwrap();
        let b = pool.acquire(&e, &c, SimTime::from_secs(2)).unwrap();
        assert!(!b.cold);
        assert_eq!(b.container, a.container);
    }

    #[test]
    fn warm_hit_reports_its_bitmap_slot_and_reuses_it() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        let c = cfg("alpine:3.12");
        let id = pool.intern_config(&c);
        let a = pool.acquire_detailed(&e, &c, SimTime::ZERO).unwrap();
        assert!(a.slot.is_some(), "cold start should land in the bitmap");
        e.with_engine(|e| {
            let out = e
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(1)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(a.container, SimTime::ZERO + out.latency)
                .unwrap();
        });
        pool.release(&e, a.container, SimTime::from_secs(1))
            .unwrap();
        let b = pool
            .acquire_detailed(&e, &c, SimTime::from_secs(2))
            .unwrap();
        assert!(!b.cold);
        assert!(!b.first_exec, "reused container has executed before");
        assert_eq!(b.slot, a.slot, "container keeps its slot across reuse");
        // The app-token slot survives the round trip too.
        assert_eq!(pool.note_app(id, b.slot.unwrap(), 7), Some(0));
        assert_eq!(pool.note_app(id, b.slot.unwrap(), 7), Some(7));
    }

    #[test]
    fn double_release_is_rejected_not_double_pooled() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 2);
        let c = cfg("alpine:3.12");
        let a = pool.acquire(&e, &c, SimTime::ZERO).unwrap();
        e.with_engine(|e| {
            let out = e
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(1)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(a.container, SimTime::ZERO + out.latency)
                .unwrap();
        });
        pool.release(&e, a.container, SimTime::from_secs(1))
            .unwrap();
        assert!(pool
            .release(&e, a.container, SimTime::from_secs(2))
            .is_err());
        assert_eq!(pool.total_available(), 1, "no double-pooling");
        assert_eq!(pool.total_live(), 1);
    }

    #[test]
    fn parallel_warm_acquires_on_distinct_keys_do_not_serialize_on_one_lock() {
        // Smoke-level check that distinct keys land on distinct shards often
        // enough that 8 keys use >1 shard.
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 8);
        let shards: std::collections::HashSet<usize> = (0..8)
            .map(|i| {
                let mut c = cfg("alpine:3.12");
                c.exec.env.insert("K".into(), i.to_string());
                pool.shard_of(pool.intern_config(&c))
            })
            .collect();
        assert!(shards.len() > 1, "8 keys should spread across shards");
    }

    #[test]
    fn dirty_snapshot_skips_cold_keys_but_gcs_them_on_schedule() {
        let e = engine();
        let mut pool = ShardedPool::with_shards(KeyPolicy::Exact, 1);
        pool.set_gc_intervals(2);
        let a = cfg("alpine:3.12");
        let b = cfg("python:3.8-alpine");
        pool.prewarm(&e, &a, SimTime::ZERO).unwrap();
        pool.prewarm(&e, &b, SimTime::ZERO).unwrap();
        let ida = pool.intern_config(&a);
        let idb = pool.intern_config(&b);
        // Both warm: both visited every interval even without touches.
        let visited = |s: &ShardSnapshot| -> Vec<(KeyId, usize)> {
            s.demands.iter().map(|d| (d.id, d.demand)).collect()
        };
        let s1 = pool.take_shard_snapshot_dirty(0);
        assert_eq!(visited(&s1), vec![(ida, 0), (idb, 0)]);
        // The snapshot carries each slot's live population (one prewarmed
        // container apiece), so the controller needs no second lookup.
        assert!(s1.demands.iter().all(|d| d.avail == 1 && d.in_use == 0));
        // Drain A to empty; the retire is a touch, so the next snapshot
        // reports its final zero-demand interval and starts the countdown.
        pool.retire_one_id(&e, ida, SimTime::from_secs(1)).unwrap();
        let s2 = pool.take_shard_snapshot_dirty(0);
        assert_eq!(visited(&s2), vec![(ida, 0), (idb, 0)]);
        assert!(s2.retired.is_empty());
        // Cold now: skipped from the demand scan, GC'd by the idle sweep
        // exactly gc_intervals snapshots after going cold.
        let s3 = pool.take_shard_snapshot_dirty(0);
        assert_eq!(visited(&s3), vec![(idb, 0)]);
        assert_eq!(s3.retired, vec![ida]);
        assert_eq!(pool.keys(), vec![pool.key_of(&b)]);
        // A re-touch after going cold cancels the countdown.
        pool.prewarm(&e, &a, SimTime::from_secs(2)).unwrap();
        pool.retire_one_id(&e, pool.intern_config(&a), SimTime::from_secs(3))
            .unwrap();
        let _ = pool.take_shard_snapshot_dirty(0); // goes cold again
        pool.prewarm(&e, &a, SimTime::from_secs(4)).unwrap(); // re-touched
        let s5 = pool.take_shard_snapshot_dirty(0);
        assert!(s5.retired.is_empty(), "re-touched key must not be GC'd");
        assert!(s5.demands.iter().any(|d| d.id == pool.intern_config(&a)));
    }

    #[test]
    fn full_and_dirty_snapshots_agree_on_gc_timing() {
        for gc in [1u32, 2, 3] {
            let (ef, ed) = (engine(), engine());
            let mut full = ShardedPool::with_shards(KeyPolicy::Exact, 1);
            let mut dirty = ShardedPool::with_shards(KeyPolicy::Exact, 1);
            full.set_gc_intervals(gc);
            dirty.set_gc_intervals(gc);
            let c = cfg("alpine:3.12");
            full.prewarm(&ef, &c, SimTime::ZERO).unwrap();
            dirty.prewarm(&ed, &c, SimTime::ZERO).unwrap();
            full.retire_one(&ef, &full.key_of(&c), SimTime::ZERO)
                .unwrap();
            dirty
                .retire_one(&ed, &dirty.key_of(&c), SimTime::ZERO)
                .unwrap();
            // The slot is empty; both modes must GC it at the same snapshot.
            for step in 1..=gc + 1 {
                let f = full.take_shard_snapshot(0);
                let d = dirty.take_shard_snapshot_dirty(0);
                assert_eq!(
                    f.retired, d.retired,
                    "gc={gc} step={step}: retire timing diverged"
                );
                assert_eq!(
                    full.keys().is_empty(),
                    dirty.keys().is_empty(),
                    "gc={gc} step={step}"
                );
            }
        }
    }

    #[test]
    fn evict_oldest_scans_across_shards() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        // Three types, staggered creation: the oldest must go first even
        // though the types live on different shards.
        let configs = [
            cfg("alpine:3.12"),
            cfg("python:3.8-alpine"),
            cfg("golang:1.13"),
        ];
        for (i, c) in configs.iter().enumerate() {
            pool.prewarm(&e, c, SimTime::from_secs(i as u64)).unwrap();
        }
        let oldest = e.with_engine(|e| e.live_ids_oldest_first()[0]);
        pool.evict_oldest(&e, SimTime::from_secs(10)).unwrap();
        assert_eq!(
            e.with_engine(|e| e.state(oldest)),
            containersim::ContainerState::Removed
        );
        assert_eq!(pool.total_available(), 2);
    }
}
