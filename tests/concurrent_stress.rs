//! Concurrency stress: many OS threads hammering the shared HotC gateway
//! (std scoped threads), checking pool consistency afterwards.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::{AppProfile, Gateway};
use hotc::{ConcurrentGateway, HotC, HotCConfig, PoolLimits};
use simclock::shared::ThreadTimeline;
use simclock::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn shared_gateway(functions: usize, limits: Option<PoolLimits>) -> Arc<ConcurrentGateway<HotC>> {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let provider = match limits {
        Some(limits) => HotC::new(HotCConfig {
            limits,
            ..Default::default()
        }),
        None => HotC::with_defaults(),
    };
    let mut gw = Gateway::new(engine, provider);
    let langs = [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::NodeJs,
        LanguageRuntime::Java,
        LanguageRuntime::Ruby,
    ];
    for i in 0..functions {
        let app = AppProfile::qr_code(langs[i % langs.len()]);
        let mut config = app.default_config();
        config.exec.env.insert("SHARD".into(), i.to_string());
        gw.register(
            faas::FunctionSpec::from_app(app)
                .named(format!("fn-{i}"))
                .with_config(config),
        );
    }
    Arc::new(ConcurrentGateway::new(gw))
}

#[test]
fn stress_many_threads_many_functions() {
    let functions = 6;
    let threads = 8;
    let per_thread = 50;
    let gw = shared_gateway(functions, None);
    let errors = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..threads {
            let gw = Arc::clone(&gw);
            let errors = Arc::clone(&errors);
            s.spawn(move || {
                let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                for i in 0..per_thread {
                    let function = format!("fn-{}", (t + i) % functions);
                    match gw.handle(&function, &mut timeline) {
                        Ok(trace) => assert!(trace.is_well_formed()),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    timeline.advance(SimDuration::from_millis(500));
                }
            });
        }
    });

    assert_eq!(errors.load(Ordering::Relaxed), 0);
    gw.with(|g| {
        assert_eq!(g.stats().requests as usize, threads * per_thread);
        // Pool and engine agree after the storm.
        assert_eq!(g.provider().pool().total_live(), g.engine().live_count());
        assert_eq!(
            g.provider().pool().total_available(),
            g.engine().live_count()
        );
        // Reuse dominates: cold starts bounded by functions × peak overlap,
        // not by request count.
        assert!(
            (g.stats().cold_starts as usize) < threads * functions,
            "cold={}",
            g.stats().cold_starts
        );
        assert_eq!(g.engine().volumes().len(), g.engine().live_count());
    });
}

#[test]
fn stress_with_concurrent_ticks_and_limits() {
    let gw = shared_gateway(4, Some(PoolLimits::new(6, 0.99)));
    std::thread::scope(|s| {
        // Worker threads.
        for t in 0..6 {
            let gw = Arc::clone(&gw);
            s.spawn(move || {
                let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                for i in 0..40 {
                    let function = format!("fn-{}", (t * 7 + i) % 4);
                    gw.handle(&function, &mut timeline).expect("request");
                    timeline.advance(SimDuration::from_millis(750));
                }
            });
        }
        // A maintenance thread racing ticks against the workers.
        let gw_tick = Arc::clone(&gw);
        s.spawn(move || {
            for k in 0..50u64 {
                gw_tick.tick(SimTime::from_secs(k * 30)).expect("tick");
                std::thread::yield_now();
            }
        });
    });

    gw.with(|g| {
        assert_eq!(g.stats().requests, 240);
        assert_eq!(g.provider().pool().total_live(), g.engine().live_count());
    });
    // Final maintenance enforces the cap.
    gw.tick(SimTime::from_secs(10_000)).expect("final tick");
    gw.with(|g| assert!(g.engine().live_count() <= 6));
}

#[test]
fn contended_single_function_converges_to_small_pool() {
    let gw = shared_gateway(1, None);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let gw = Arc::clone(&gw);
            s.spawn(move || {
                let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                for _ in 0..30 {
                    gw.handle("fn-0", &mut timeline).expect("request");
                    timeline.advance(SimDuration::from_secs(1));
                }
            });
        }
    });
    gw.with(|g| {
        assert_eq!(g.stats().requests, 240);
        // One runtime type: the pool is bounded by peak thread overlap.
        assert!(
            g.engine().live_count() <= 16,
            "live={}",
            g.engine().live_count()
        );
    });
}
