//! DFS schedule exploration: re-execute the checked closure under every
//! prescribed choice prefix until the tree (bounded by the preemption
//! bound, pruned by sleep sets) is exhausted, a budget trips, or a
//! violation is found.

use super::rt::{NodeRec, RunShared};
use std::sync::{Arc, Mutex};

/// Serializes whole checker runs process-wide: the virtual-thread context
/// is thread-local, but the checked closures share the one address space
/// (and `cargo test` runs tests on multiple threads).
static RUN_GUARD: Mutex<()> = Mutex::new(());

/// Default schedule budget when `HOTC_MODEL_BUDGET` is unset.
const DEFAULT_BUDGET: u64 = 20_000;

/// A schedule that violated an invariant, replayable by construction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The panic message of the failing virtual thread.
    pub message: String,
    /// Numbered trace of every operation the failing execution ran.
    pub trace: String,
    /// The choice vector (one entry per nondeterministic choice point) that
    /// deterministically replays this execution.
    pub schedule: Vec<usize>,
}

impl Violation {
    /// Human-readable rendering: message, replay vector, numbered trace.
    pub fn render(&self) -> String {
        format!(
            "model violation: {}\nreplay choice vector: {:?}\nexecution trace:\n{}",
            self.message, self.schedule, self.trace
        )
    }
}

/// Outcome of [`Checker::try_check`].
#[derive(Debug)]
pub struct Report {
    /// Executions performed (including sleep-set-pruned ones).
    pub schedules: u64,
    /// How many of those executions were abandoned by sleep-set pruning
    /// (every runnable thread asleep — branch equivalent to one explored).
    pub pruned: u64,
    /// Whether the bounded schedule tree was fully exhausted (false when
    /// the budget tripped or a violation stopped the search).
    pub complete: bool,
    /// The first violating schedule found, if any.
    pub violation: Option<Violation>,
}

/// Bounded model checker: explores interleavings of a closure built from
/// model atomics ([`super::ModelAtomicU64`] & co) and virtual threads
/// ([`super::spawn`]).
#[derive(Debug, Clone)]
pub struct Checker {
    bound: usize,
    budget: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    /// A checker with preemption bound 2 and the budget from
    /// `HOTC_MODEL_BUDGET` (default 20 000 schedules).
    pub fn new() -> Checker {
        let budget = std::env::var("HOTC_MODEL_BUDGET")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_BUDGET);
        Checker { bound: 2, budget }
    }

    /// Sets the preemption bound: how many times the scheduler may switch
    /// away from a thread that could have kept running. 0 explores only
    /// run-to-completion schedules; 2 catches most published bug classes.
    pub fn preemption_bound(mut self, bound: usize) -> Checker {
        self.bound = bound;
        self
    }

    /// Caps the number of executions explored.
    pub fn budget(mut self, budget: u64) -> Checker {
        self.budget = budget;
        self
    }

    /// Explores `f` and returns what happened. `f` is re-executed once per
    /// schedule and must be deterministic apart from the modelled atomics.
    pub fn try_check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _serial = RUN_GUARD
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let f = Arc::new(f);
        let mut prefix: Vec<NodeRec> = Vec::new();
        let mut schedules = 0u64;
        let mut pruned = 0u64;
        let mut complete = false;
        let violation = loop {
            if schedules >= self.budget {
                break None;
            }
            let shared = Arc::new(RunShared::new(prefix, self.bound));
            let body = Arc::clone(&f);
            shared.start_root(move || body());
            let outcome = shared.wait_outcome();
            schedules += 1;
            if outcome.pruned {
                pruned += 1;
            }
            if let Some(msg) = outcome.det_mismatch {
                // A nondeterministic checked closure is unrecoverable checker misuse.
                panic!("hotc-model: {msg}; the checked closure must be deterministic");
            }
            if let Some(message) = outcome.violation {
                break Some(Violation {
                    message,
                    trace: outcome.trace.join("\n"),
                    schedule: outcome.nodes.iter().map(|n| n.cur).collect(),
                });
            }
            let mut nodes = outcome.nodes;
            while nodes.last().is_some_and(|last| last.cur + 1 >= last.n) {
                nodes.pop();
            }
            match nodes.last_mut() {
                Some(last) => last.cur += 1,
                None => {
                    complete = true;
                    break None;
                }
            }
            prefix = nodes;
        };
        Report {
            schedules,
            pruned,
            complete,
            violation,
        }
    }

    /// Like [`try_check`](Self::try_check), but panics with the rendered
    /// trace if a violating schedule exists — the assertion form used by
    /// the protocol test suite.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Some(v) = self.try_check(f).violation {
            // Surfacing the violating schedule is this API's contract.
            panic!("{}", v.render());
        }
    }
}
